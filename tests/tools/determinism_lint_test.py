#!/usr/bin/env python3
"""Unit tests for tools/determinism_lint.py.

Each rule gets positive fixtures (code that must be flagged) and negative
fixtures (idiomatic code that must not be). The linter guards the repo's
determinism story, so the linter itself needs the same regression safety as
the simulator: a rule that silently stops firing is worse than no rule.

Run directly (``python3 tests/tools/determinism_lint_test.py``) or through
ctest as ``determinism_lint_unittests``.
"""

import importlib.util
import pathlib
import sys
import unittest

REPO = pathlib.Path(__file__).resolve().parent.parent.parent
_SPEC = importlib.util.spec_from_file_location(
    "determinism_lint", REPO / "tools" / "determinism_lint.py"
)
lint = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(lint)


def rules_of(findings):
    return [f.rule for f in findings]


def run(text, rel="src/core/x.cpp", extra=None):
    return lint.lint_text(text, rel, extra or set())


class UnorderedIterTest(unittest.TestCase):
    def test_range_for_over_local_unordered_map(self):
        src = (
            "std::unordered_map<int, int> m;\n"
            "for (const auto& [k, v] : m) emit(k);\n"
        )
        self.assertEqual(rules_of(run(src)), ["unordered-iter"])

    def test_begin_call_and_iterator_pair_construction(self):
        src = (
            "std::unordered_set<FlowKey, FlowKeyHash> found;\n"
            "std::vector<FlowKey> out(found.begin(), found.end());\n"
        )
        self.assertEqual(rules_of(run(src)), ["unordered-iter"])

    def test_structured_binding_and_deref(self):
        src = (
            "std::unordered_map<K, V>* tbl = lookup();\n"
            "for (auto& kv : *tbl) use(kv);\n"
        )
        self.assertEqual(rules_of(run(src)), ["unordered-iter"])

    def test_ordered_map_is_fine(self):
        src = "std::map<int, int> m;\nfor (const auto& [k, v] : m) emit(k);\n"
        self.assertEqual(run(src), [])

    def test_vector_named_like_nothing_unordered_is_fine(self):
        src = "std::vector<DropEntry> drops_;\nfor (const auto& d : drops_) use(d);\n"
        self.assertEqual(run(src), [])

    def test_lookup_without_iteration_is_fine(self):
        src = (
            "std::unordered_map<int, int> m;\n"
            "auto it = m.find(3);\n"
            "if (m.count(4)) f();\n"
        )
        self.assertEqual(run(src), [])

    def test_extra_names_from_primary_header(self):
        # foo.cpp iterating a member that foo.h declared unordered.
        src = "for (const auto& [k, v] : flows_) emit(v);\n"
        self.assertEqual(rules_of(run(src, extra={"flows_"})), ["unordered-iter"])
        self.assertEqual(run(src), [])  # without the header hand-off: clean

    def test_multiline_declaration(self):
        src = (
            "std::unordered_map<FlowKey, DropEntry,\n"
            "                   FlowKeyHash> drops;\n"
            "for (const auto& [k, d] : drops) out.push_back(d);\n"
        )
        self.assertEqual(rules_of(run(src)), ["unordered-iter"])

    def test_mention_in_comment_or_string_is_fine(self):
        src = (
            "// iterate the unordered_map<int,int> m carefully\n"
            'log("for (auto& x : m)");\n'
        )
        self.assertEqual(run(src), [])


class PointerKeyTest(unittest.TestCase):
    def test_map_keyed_on_pointer(self):
        self.assertEqual(
            rules_of(run("std::unordered_map<Node*, int> owners;\n")),
            ["pointer-key"],
        )

    def test_set_of_const_pointers(self):
        self.assertEqual(
            rules_of(run("std::set<const Event*> pending;\n")), ["pointer-key"]
        )

    def test_std_hash_over_pointer(self):
        self.assertEqual(
            rules_of(run("std::size_t h = std::hash<Flow*>{}(f);\n")),
            ["pointer-key"],
        )

    def test_reinterpret_cast_to_uintptr(self):
        self.assertEqual(
            rules_of(run("auto key = reinterpret_cast<std::uintptr_t>(node);\n")),
            ["pointer-key"],
        )

    def test_value_keys_are_fine(self):
        src = (
            "std::unordered_map<FlowKey, DropEntry, FlowKeyHash> drops;\n"
            "std::map<std::uint32_t, Node> nodes;\n"
        )
        self.assertEqual(run(src), [])


class WallClockTest(unittest.TestCase):
    def test_rand_and_srand(self):
        self.assertEqual(rules_of(run("int x = rand();\n")), ["wall-clock"])
        self.assertEqual(rules_of(run("srand(42);\n")), ["wall-clock"])

    def test_chrono_clocks(self):
        src = "auto t = std::chrono::steady_clock::now();\n"
        self.assertEqual(rules_of(run(src)), ["wall-clock"])

    def test_posix_clocks(self):
        self.assertEqual(
            rules_of(run("clock_gettime(CLOCK_MONOTONIC, &ts);\n")), ["wall-clock"]
        )
        self.assertEqual(rules_of(run("time(NULL);\n")), ["wall-clock"])

    def test_obs_layer_is_exempt(self):
        src = "auto t = std::chrono::steady_clock::now();\n"
        self.assertEqual(run(src, rel="src/obs/trace.cpp"), [])
        # ...but only that directory.
        self.assertEqual(rules_of(run(src, rel="src/sim/x.cpp")), ["wall-clock"])

    def test_serve_daemon_is_exempt(self):
        # The streaming daemon is host-side plumbing: wall-time latency
        # metrics and tail-poll pacing are legitimate there and never feed a
        # determinism digest.
        src = "auto deadline = std::chrono::steady_clock::now() + poll;\n"
        self.assertEqual(run(src, rel="src/serve/tail_source.cpp"), [])
        self.assertEqual(run(src, rel="src/serve/session.cpp"), [])
        # The exemption is the directory, not the name: a serve-like file
        # elsewhere in src/ is still held to sim time.
        self.assertEqual(
            rules_of(run(src, rel="src/core/serve_helpers.cpp")), ["wall-clock"]
        )
        # Prefix matching is per path segment — src/served is not src/serve.
        self.assertEqual(
            rules_of(run(src, rel="src/served/x.cpp")), ["wall-clock"]
        )

    def test_sim_time_identifiers_are_fine(self):
        src = "Tick now = sim().now();\nconst auto runtime_ns = now - start;\n"
        self.assertEqual(run(src), [])


class RngSeedTest(unittest.TestCase):
    def test_random_device(self):
        src = "std::random_device rd;\nstd::mt19937 gen(rd());\n"
        self.assertEqual(rules_of(run(src)), ["rng-seed"])

    def test_default_random_engine_and_arc4random(self):
        self.assertEqual(
            rules_of(run("std::default_random_engine e;\n")), ["rng-seed"]
        )
        self.assertEqual(rules_of(run("x = arc4random();\n")), ["rng-seed"])

    def test_getrandom_and_getentropy(self):
        src = "getrandom(buf, sizeof buf, 0);\ngetentropy(buf, 16);\n"
        self.assertEqual(rules_of(run(src)), ["rng-seed", "rng-seed"])

    def test_no_exemption_for_obs_or_serve(self):
        # Unlike wall-clock, the daemon may not draw entropy either.
        src = "std::random_device rd;\n"
        self.assertEqual(rules_of(run(src, rel="src/serve/server.cpp")), ["rng-seed"])
        self.assertEqual(rules_of(run(src, rel="src/obs/metrics.cpp")), ["rng-seed"])

    def test_fixed_seed_constants_are_fine(self):
        src = (
            "inline constexpr std::uint64_t kSketchRowSeeds[] = {\n"
            "    0x9E3779B97F4A7C15ULL, 0xC2B2AE3D27D4EB4FULL,\n"
            "};\n"
            "sim::Rng rng(case_seed);\n"
        )
        self.assertEqual(run(src), [])

    def test_mention_in_comment_is_fine(self):
        self.assertEqual(run("// never use std::random_device here\n"), [])


class UninitPodTest(unittest.TestCase):
    def test_bare_scalar_fields_in_payload_struct(self):
        src = (
            "struct DropEvent {\n"
            "  std::uint64_t count;\n"
            "  double rate;\n"
            "};\n"
        )
        self.assertEqual(rules_of(run(src)), ["uninit-pod", "uninit-pod"])

    def test_raw_pointer_field(self):
        src = "struct TraceFrame {\n  const char* name;\n};\n"
        self.assertEqual(rules_of(run(src)), ["uninit-pod"])

    def test_initialized_fields_are_fine(self):
        src = (
            "struct DropEvent {\n"
            "  std::uint64_t count = 0;\n"
            "  double rate{0.0};\n"
            "  const char* name = nullptr;\n"
            "  std::string label;\n"  # class type: self-initializing
            "};\n"
        )
        self.assertEqual(run(src), [])

    def test_non_payload_struct_is_ignored(self):
        src = "struct Config {\n  int workers;\n};\n"
        self.assertEqual(run(src), [])

    def test_methods_and_nested_braces_are_ignored(self):
        src = (
            "struct StatEvent {\n"
            "  std::uint64_t v = 0;\n"
            "  int value() const { int tmp; return tmp + v; }\n"
            "  static int parse(const char* s);\n"
            "};\n"
        )
        self.assertEqual(run(src), [])

    def test_forward_declaration_is_ignored(self):
        self.assertEqual(run("struct TraceEvent;\n"), [])

    def test_brace_on_next_line(self):
        src = "struct PollRecord\n{\n  int n;\n};\n"
        self.assertEqual(rules_of(run(src)), ["uninit-pod"])


class SuppressionTest(unittest.TestCase):
    def test_justified_suppression_silences_the_rule(self):
        src = (
            "std::unordered_map<int, int> m;\n"
            "for (const auto& [k, v] : m) n += v;"
            "  // vedr-lint: allow(unordered-iter): commutative sum\n"
        )
        self.assertEqual(run(src), [])

    def test_bare_suppression_is_itself_a_finding(self):
        src = (
            "std::unordered_map<int, int> m;\n"
            "for (const auto& [k, v] : m) n += v;  // vedr-lint: allow(unordered-iter)\n"
        )
        self.assertEqual(rules_of(run(src)), ["bare-suppression"])

    def test_unknown_rule_name_is_flagged(self):
        src = "int x = 0;  // vedr-lint: allow(unordred-iter): typo'd rule\n"
        self.assertEqual(rules_of(run(src)), ["unknown-rule"])

    def test_suppression_only_covers_its_own_rule(self):
        src = (
            "std::unordered_map<Node*, int> m;\n"
            "for (const auto& [k, v] : m) n += v;"
            "  // vedr-lint: allow(unordered-iter): commutative sum\n"
        )
        # pointer-key on line 1 is not covered by line 2's allow.
        self.assertEqual(rules_of(run(src)), ["pointer-key"])


class HelperTest(unittest.TestCase):
    def test_collect_unordered_names(self):
        src = (
            "std::unordered_map<FlowKey, DropEntry, FlowKeyHash> drops_;\n"
            "std::unordered_set<int> seen, visited;\n"
            "std::vector<int> plain_;\n"
            "std::unordered_map<int, int> f(std::unordered_set<long> s);\n"
        )
        names = lint.collect_unordered_names(src)
        self.assertIn("drops_", names)
        self.assertIn("seen", names)
        self.assertIn("visited", names)
        self.assertNotIn("plain_", names)

    def test_strip_comments_and_strings(self):
        self.assertEqual(
            lint.strip_comments_and_strings('call("rand()"); // time(NULL)'),
            'call(""); ',
        )

    def test_finding_str_format(self):
        f = lint.Finding("src/a.cpp", 7, "wall-clock", "msg")
        self.assertEqual(str(f), "src/a.cpp:7: msg [wall-clock]")

    def test_rule_names_are_stable(self):
        # CI and suppression comments reference these exact names.
        self.assertEqual(
            set(lint.RULE_NAMES),
            {"unordered-iter", "pointer-key", "wall-clock", "rng-seed",
             "uninit-pod", "bare-suppression", "unknown-rule"},
        )


class RepoCleanTest(unittest.TestCase):
    def test_src_tree_is_clean(self):
        # The acceptance bar for the PR: the shipped tree has zero findings.
        findings = []
        header_names = {}
        files = [f for f in lint.gather_files(REPO, [str(REPO / "src")])]
        for f in files:
            if f.suffix in {".h", ".hpp"}:
                names = lint.collect_unordered_names(f.read_text())
                if names:
                    header_names.setdefault(f.stem, set()).update(names)
        for f in files:
            findings.extend(lint.lint_file(f, REPO, header_names))
        self.assertEqual([str(f) for f in findings], [])


if __name__ == "__main__":
    unittest.main()
