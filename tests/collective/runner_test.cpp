#include "collective/runner.h"

#include <gtest/gtest.h>

#include <numeric>

#include "collective/step_queues.h"
#include "net/network.h"
#include "sim/simulator.h"

namespace vedr::collective {
namespace {

struct Fixture {
  sim::Simulator sim;
  net::Topology topo;
  net::Network net;

  Fixture() : topo(net::make_fat_tree(4, net::NetConfig{})), net(sim, topo, net::NetConfig{}) {}

  std::vector<NodeId> participants(int n) {
    const auto hosts = topo.hosts();
    return std::vector<NodeId>(hosts.begin(), hosts.begin() + n);
  }
};

TEST(StepQueues, TableOneStates) {
  const auto p = CollectivePlan::ring(0, OpType::kAllGather, {0, 1, 2, 3}, 100);
  StepQueues q(p, 1);
  ASSERT_EQ(q.total_steps(), 3);
  // Step 0 has no dependency: non-waiting.
  EXPECT_EQ(q.state(), WaitState::kNonWaiting);
  q.on_send_complete(0);
  // Step 1 needs the receive from host 0 which has not arrived: waiting.
  EXPECT_EQ(q.state(), WaitState::kWaiting);
  EXPECT_EQ(q.waiting_on(), 0);
  q.on_recv_complete(0);
  // Recv index now ahead of send index: non-waiting (Table I row 2).
  EXPECT_EQ(q.state(), WaitState::kNonWaiting);
  EXPECT_EQ(q.waiting_on(), net::kInvalidNode);
  q.on_send_complete(1);
  EXPECT_EQ(q.state(), WaitState::kWaiting);
  q.on_recv_complete(1);
  q.on_send_complete(2);
  EXPECT_EQ(q.state(), WaitState::kFinished);
}

TEST(StepQueues, SsqRsqContents) {
  const auto p = CollectivePlan::ring(0, OpType::kAllGather, {5, 6, 7}, 100);
  StepQueues q(p, 0);  // flow at host 5
  EXPECT_EQ(q.ssq(), (std::vector<NodeId>{6, 6}));
  EXPECT_EQ(q.rsq(), (std::vector<NodeId>{net::kInvalidNode, 7}));
}

TEST(Runner, AllGatherCompletesAndRecordsTimings) {
  Fixture f;
  auto plan = CollectivePlan::ring(0, OpType::kAllGather, f.participants(4), 256 * 1024);
  CollectiveRunner runner(f.net, std::move(plan));
  sim::Tick finished = sim::kNever;
  runner.set_on_finished([&](sim::Tick t) { finished = t; });
  runner.start(1000);
  f.sim.run();

  ASSERT_TRUE(runner.done());
  EXPECT_EQ(finished, runner.finish_time());
  EXPECT_EQ(runner.start_time(), 1000);
  for (int flow = 0; flow < 4; ++flow) {
    for (int s = 0; s < 3; ++s) {
      const StepRecord& r = runner.record(flow, s);
      EXPECT_NE(r.start_time, sim::kNever);
      EXPECT_GT(r.end_time, r.start_time);
      EXPECT_GT(r.expected_duration, 0);
    }
  }
}

TEST(Runner, DependencyGatingHolds) {
  Fixture f;
  auto plan = CollectivePlan::ring(0, OpType::kAllGather, f.participants(8), 128 * 1024);
  CollectiveRunner runner(f.net, std::move(plan));
  runner.start(0);
  f.sim.run();
  ASSERT_TRUE(runner.done());
  for (int flow = 0; flow < 8; ++flow) {
    for (int s = 1; s < 7; ++s) {
      const StepRecord& r = runner.record(flow, s);
      // A step never starts before its own previous step ended...
      EXPECT_GE(r.start_time, runner.record(flow, s - 1).end_time);
      // ...nor before its data dependency was received.
      ASSERT_GE(r.dep_flow, 0);
      EXPECT_GE(r.start_time, r.dep_ready_time);
      EXPECT_NE(r.dep_ready_time, sim::kNever);
    }
  }
}

TEST(Runner, StepCallbacksFireInOrder) {
  Fixture f;
  auto plan = CollectivePlan::ring(0, OpType::kAllGather, f.participants(4), 64 * 1024);
  CollectiveRunner runner(f.net, std::move(plan));
  int starts = 0, completes = 0;
  sim::Tick last_complete = 0;
  runner.set_on_step_start([&](const StepRecord& r) {
    ++starts;
    EXPECT_NE(r.start_time, sim::kNever);
    EXPECT_EQ(r.end_time, sim::kNever);
  });
  runner.set_on_step_complete([&](const StepRecord& r) {
    ++completes;
    EXPECT_GE(r.end_time, last_complete);
    last_complete = r.end_time;
  });
  runner.start(0);
  f.sim.run();
  EXPECT_EQ(starts, 12);
  EXPECT_EQ(completes, 12);
}

TEST(Runner, HalvingDoublingCompletes) {
  Fixture f;
  auto plan =
      CollectivePlan::halving_doubling(0, OpType::kAllGather, f.participants(8), 128 * 1024);
  CollectiveRunner runner(f.net, std::move(plan));
  runner.start(0);
  f.sim.run();
  ASSERT_TRUE(runner.done());
  // Step volumes double: later steps take longer in isolation.
  const StepRecord& s0 = runner.record(0, 0);
  const StepRecord& s2 = runner.record(0, 2);
  EXPECT_GT(s2.bytes, s0.bytes);
}

TEST(Runner, AllReduceRingCompletes) {
  Fixture f;
  auto plan = CollectivePlan::ring(0, OpType::kAllReduce, f.participants(4), 64 * 1024);
  CollectiveRunner runner(f.net, std::move(plan));
  runner.start(0);
  f.sim.run();
  ASSERT_TRUE(runner.done());
  EXPECT_EQ(runner.completed_records().size(), 4u * 6u);
}

TEST(Runner, LiveWaitingStatesDuringRun) {
  Fixture f;
  const auto participants = f.participants(4);
  auto plan = CollectivePlan::ring(0, OpType::kAllGather, participants, 1024 * 1024);
  CollectiveRunner runner(f.net, std::move(plan));
  runner.start(0);
  // On a healthy symmetric ring receives land before the local send's last
  // ACK, so flows are rarely "waiting"; pause host 1's uplink to force its
  // successor to wait on the delayed data.
  const net::PortRef access = f.topo.peer(participants[1], 0);
  f.sim.schedule_at(50 * sim::kMicrosecond, [&f, access] {
    f.net.deliver_pfc(access.node, access.port, net::Priority::kData, true);
  });
  f.sim.schedule_at(600 * sim::kMicrosecond, [&f, access] {
    f.net.deliver_pfc(access.node, access.port, net::Priority::kData, false);
  });
  bool saw_waiting = false;
  // Poll the queues mid-run.
  for (int i = 1; i <= 50; ++i) {
    f.sim.schedule_at(i * 20 * sim::kMicrosecond, [&] {
      for (int flow = 0; flow < 4; ++flow)
        if (runner.queues(flow).state() == WaitState::kWaiting) saw_waiting = true;
    });
  }
  f.sim.run();
  EXPECT_TRUE(saw_waiting);
  for (int flow = 0; flow < 4; ++flow)
    EXPECT_EQ(runner.queues(flow).state(), WaitState::kFinished);
}

TEST(Runner, RecordsCarryPlanMetadata) {
  Fixture f;
  auto plan = CollectivePlan::ring(0, OpType::kAllGather, f.participants(4), 64 * 1024);
  const auto participants = plan.participants();
  CollectiveRunner runner(f.net, std::move(plan));
  runner.start(0);
  f.sim.run();
  const StepRecord& r = runner.record(2, 1);
  EXPECT_EQ(r.flow_index, 2);
  EXPECT_EQ(r.step, 1);
  EXPECT_EQ(r.src, participants[2]);
  EXPECT_EQ(r.dst, participants[3]);
  EXPECT_EQ(r.wait_src, participants[1]);
  EXPECT_EQ(r.dep_flow, 1);
  EXPECT_EQ(r.dep_step, 0);
  EXPECT_TRUE(runner.plan().contains(r.key));
}

}  // namespace
}  // namespace vedr::collective
