#include "collective/plan.h"

#include <gtest/gtest.h>

#include <numeric>
#include <set>
#include <tuple>

namespace vedr::collective {
namespace {

std::vector<NodeId> hosts(int n) {
  std::vector<NodeId> v(static_cast<std::size_t>(n));
  std::iota(v.begin(), v.end(), 0);
  return v;
}

TEST(RingPlan, StepCountAndTargets) {
  const auto p = CollectivePlan::ring(0, OpType::kAllGather, hosts(8), 1000);
  EXPECT_EQ(p.num_steps(), 7);
  EXPECT_EQ(p.total_transfers(), 56);
  for (int f = 0; f < 8; ++f)
    for (const auto& s : p.steps_of_flow(f)) {
      EXPECT_EQ(s.src, f);
      EXPECT_EQ(s.dst, (f + 1) % 8);
      EXPECT_EQ(s.bytes, 1000);
    }
}

TEST(RingPlan, AllReduceDoublesSteps) {
  const auto p = CollectivePlan::ring(0, OpType::kAllReduce, hosts(4), 1000);
  EXPECT_EQ(p.num_steps(), 6);  // 2*(P-1)
}

TEST(RingPlan, DependencyChain) {
  const auto p = CollectivePlan::ring(0, OpType::kAllGather, hosts(4), 1000);
  for (int f = 0; f < 4; ++f) {
    EXPECT_FALSE(p.step(f, 0).has_dependency());
    for (int s = 1; s < 3; ++s) {
      EXPECT_EQ(p.step(f, s).dep_flow, (f + 3) % 4);
      EXPECT_EQ(p.step(f, s).dep_step, s - 1);
    }
  }
}

TEST(RingPlan, AllGatherDeliversEveryChunkEverywhere) {
  // Simulate the data movement logically: host i starts with chunk i; after
  // each step it receives the chunk its predecessor sent.
  const int n = 8;
  const auto p = CollectivePlan::ring(0, OpType::kAllGather, hosts(n), 1000);
  std::vector<std::set<int>> has(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) has[static_cast<std::size_t>(i)].insert(i);
  for (int s = 0; s < p.num_steps(); ++s) {
    std::vector<std::pair<int, int>> deliveries;  // (dst, chunk)
    for (int f = 0; f < n; ++f) {
      const StepSpec& spec = p.step(f, s);
      EXPECT_TRUE(has[static_cast<std::size_t>(f)].count(spec.chunk_id) > 0)
          << "flow " << f << " step " << s << " sends chunk it does not hold";
      deliveries.emplace_back(spec.dst, spec.chunk_id);
    }
    for (const auto& [dst, chunk] : deliveries) has[static_cast<std::size_t>(dst)].insert(chunk);
  }
  for (int i = 0; i < n; ++i)
    EXPECT_EQ(has[static_cast<std::size_t>(i)].size(), static_cast<std::size_t>(n));
}

TEST(RingPlan, RejectsTooFewParticipants) {
  EXPECT_THROW(CollectivePlan::ring(0, OpType::kAllGather, hosts(1), 100),
               std::invalid_argument);
}

TEST(HalvingDoubling, PartnerDistancesDouble) {
  const auto p = CollectivePlan::halving_doubling(0, OpType::kAllGather, hosts(8), 1000);
  EXPECT_EQ(p.num_steps(), 3);
  for (int f = 0; f < 8; ++f) {
    EXPECT_EQ(p.step(f, 0).dst, f ^ 1);
    EXPECT_EQ(p.step(f, 1).dst, f ^ 2);
    EXPECT_EQ(p.step(f, 2).dst, f ^ 4);
  }
}

TEST(HalvingDoubling, VolumesDoubleForAllGather) {
  const auto p = CollectivePlan::halving_doubling(0, OpType::kAllGather, hosts(8), 1000);
  for (int f = 0; f < 8; ++f) {
    EXPECT_EQ(p.step(f, 0).bytes, 1000);
    EXPECT_EQ(p.step(f, 1).bytes, 2000);
    EXPECT_EQ(p.step(f, 2).bytes, 4000);
  }
}

TEST(HalvingDoubling, VolumesHalveForReduceScatter) {
  const auto p = CollectivePlan::halving_doubling(0, OpType::kReduceScatter, hosts(8), 1000);
  for (int f = 0; f < 8; ++f) {
    EXPECT_EQ(p.step(f, 0).bytes, 4000);
    EXPECT_EQ(p.step(f, 1).bytes, 2000);
    EXPECT_EQ(p.step(f, 2).bytes, 1000);
    // Halving: partner distance shrinks.
    EXPECT_EQ(p.step(f, 0).dst, f ^ 4);
    EXPECT_EQ(p.step(f, 2).dst, f ^ 1);
  }
}

TEST(HalvingDoubling, AllReduceChainsPhases) {
  const auto p = CollectivePlan::halving_doubling(0, OpType::kAllReduce, hosts(8), 1000);
  EXPECT_EQ(p.num_steps(), 6);
  // First gather-phase step (s=3) depends on the last scatter-phase step.
  const StepSpec& s3 = p.step(0, 3);
  EXPECT_EQ(s3.dep_step, 2);
  EXPECT_EQ(s3.dep_flow, 0 ^ 1);
}

TEST(HalvingDoubling, DependencyIsPriorPartner) {
  const auto p = CollectivePlan::halving_doubling(0, OpType::kAllGather, hosts(8), 1000);
  for (int f = 0; f < 8; ++f) {
    EXPECT_EQ(p.step(f, 1).dep_flow, f ^ 1);
    EXPECT_EQ(p.step(f, 2).dep_flow, f ^ 2);
  }
}

TEST(HalvingDoubling, RejectsNonPowerOfTwo) {
  EXPECT_THROW(CollectivePlan::halving_doubling(0, OpType::kAllGather, hosts(6), 100),
               std::invalid_argument);
}

TEST(Plan, KeyForLocateRoundTrip) {
  const auto p = CollectivePlan::ring(3, OpType::kAllGather, {10, 11, 12, 13}, 1000);
  for (int f = 0; f < 4; ++f) {
    for (int s = 0; s < p.num_steps(); ++s) {
      const auto key = p.key_for(f, s);
      const auto [lf, ls] = p.locate(key);
      EXPECT_EQ(lf, f);
      EXPECT_EQ(ls, s);
      EXPECT_TRUE(p.contains(key));
    }
  }
}

TEST(Plan, LocateRejectsForeignKeys) {
  const auto p = CollectivePlan::ring(3, OpType::kAllGather, {10, 11, 12, 13}, 1000);
  EXPECT_EQ(p.locate(net::FlowKey{10, 11, 100, 200}).first, -1);  // background flow
  const auto other = CollectivePlan::ring(4, OpType::kAllGather, {10, 11, 12, 13}, 1000);
  EXPECT_EQ(p.locate(other.key_for(0, 0)).first, -1);  // different collective id
}

TEST(Plan, WaiterOfIsInverseOfDependency) {
  for (auto op : {OpType::kAllGather, OpType::kReduceScatter, OpType::kAllReduce}) {
    const auto p = CollectivePlan::ring(0, op, hosts(8), 1000);
    for (int f = 0; f < 8; ++f) {
      for (const auto& s : p.steps_of_flow(f)) {
        if (!s.has_dependency()) continue;
        EXPECT_EQ(p.waiter_of(s.dep_flow, s.dep_step), f);
      }
    }
  }
}

TEST(Plan, FlowOfHost) {
  const auto p = CollectivePlan::ring(0, OpType::kAllGather, {20, 30, 40}, 100);
  EXPECT_EQ(p.flow_of_host(30), 1);
  EXPECT_EQ(p.flow_of_host(99), -1);
}

// Parameterized sweep: structural invariants hold across ops/algorithms/sizes.
class PlanInvariants
    : public ::testing::TestWithParam<std::tuple<OpType, Algorithm, int>> {};

TEST_P(PlanInvariants, DependenciesAreConsistent) {
  const auto [op, algo, n] = GetParam();
  const auto p = algo == Algorithm::kRing
                     ? CollectivePlan::ring(0, op, hosts(n), 1 << 12)
                     : CollectivePlan::halving_doubling(0, op, hosts(n), 1 << 12);
  for (int f = 0; f < p.num_flows(); ++f) {
    for (const auto& s : p.steps_of_flow(f)) {
      EXPECT_EQ(s.flow_index, f);
      EXPECT_NE(s.src, s.dst);
      EXPECT_GT(s.bytes, 0);
      if (s.has_dependency()) {
        EXPECT_EQ(s.dep_step, s.step - 1);
        // The dependency's transfer must arrive at this flow's origin.
        const StepSpec& dep = p.step(s.dep_flow, s.dep_step);
        EXPECT_EQ(dep.dst, s.src)
            << "flow " << f << " step " << s.step << " waits on data sent elsewhere";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, PlanInvariants,
    ::testing::Combine(::testing::Values(OpType::kAllGather, OpType::kReduceScatter,
                                         OpType::kAllReduce),
                       ::testing::Values(Algorithm::kRing, Algorithm::kHalvingDoubling),
                       ::testing::Values(2, 4, 8, 16)));

}  // namespace
}  // namespace vedr::collective
