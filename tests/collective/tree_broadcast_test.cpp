// Binomial-tree Broadcast: the non-chain decomposition exercising multi-
// waiter dependencies (§V extensibility).
#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "collective/plan.h"
#include "collective/runner.h"
#include "net/host.h"
#include "core/vedrfolnir.h"
#include "net/network.h"
#include "sim/simulator.h"

namespace vedr::collective {
namespace {

std::vector<NodeId> hosts(int n) {
  std::vector<NodeId> v(static_cast<std::size_t>(n));
  std::iota(v.begin(), v.end(), 0);
  return v;
}

TEST(TreeBroadcast, ShapeFor8) {
  const auto p = CollectivePlan::tree_broadcast(0, hosts(8), 1000);
  EXPECT_EQ(p.op(), OpType::kBroadcast);
  EXPECT_EQ(p.algorithm(), Algorithm::kBinomialTree);
  // Root sends in rounds 0,1,2; rank 1 in rounds 1,2; ranks 2,3 in round 2;
  // ranks 4-7 are leaves.
  EXPECT_EQ(p.steps_of_flow(0).size(), 3u);
  EXPECT_EQ(p.steps_of_flow(1).size(), 2u);
  EXPECT_EQ(p.steps_of_flow(2).size(), 1u);
  EXPECT_EQ(p.steps_of_flow(3).size(), 1u);
  for (int leaf = 4; leaf < 8; ++leaf) EXPECT_TRUE(p.steps_of_flow(leaf).empty());
  EXPECT_EQ(p.total_transfers(), 7);  // P-1 transfers deliver to everyone
}

TEST(TreeBroadcast, EveryRankReceivesExactlyOnce) {
  for (int n : {2, 3, 5, 8, 16}) {
    const auto p = CollectivePlan::tree_broadcast(0, hosts(n), 1000);
    std::set<NodeId> receivers;
    for (int f = 0; f < p.num_flows(); ++f)
      for (const auto& s : p.steps_of_flow(f)) EXPECT_TRUE(receivers.insert(s.dst).second);
    EXPECT_EQ(receivers.size(), static_cast<std::size_t>(n - 1));
    EXPECT_EQ(receivers.count(0), 0u) << "root never receives";
  }
}

TEST(TreeBroadcast, NonRootSendsDependOnParentDelivery) {
  const auto p = CollectivePlan::tree_broadcast(0, hosts(8), 1000);
  for (int f = 1; f < 8; ++f) {
    for (const auto& s : p.steps_of_flow(f)) {
      ASSERT_TRUE(s.has_dependency());
      // The dependency transfer must target this flow's origin.
      const StepSpec& dep = p.step(s.dep_flow, s.dep_step);
      EXPECT_EQ(dep.dst, s.src);
    }
  }
  // Root's sends have no dependency.
  for (const auto& s : p.steps_of_flow(0)) EXPECT_FALSE(s.has_dependency());
}

TEST(TreeBroadcast, OneTransferUnblocksMultipleSends) {
  const auto p = CollectivePlan::tree_broadcast(0, hosts(8), 1000);
  // Root's round-0 send (to rank 1) unblocks BOTH of rank 1's sends.
  const auto& deps = p.dependents_of(0, 0);
  ASSERT_EQ(deps.size(), 2u);
  for (const auto& [flow, step] : deps) EXPECT_EQ(flow, 1);
}

TEST(TreeBroadcast, RunsOnFabricAndCompletes) {
  sim::Simulator sim;
  net::NetConfig cfg;
  net::Network network(sim, net::make_fat_tree(4, cfg), cfg);
  const auto all = network.topology().hosts();
  std::vector<NodeId> participants(all.begin(), all.begin() + 8);
  auto plan = CollectivePlan::tree_broadcast(0, participants, 1024 * 1024);
  CollectiveRunner runner(network, std::move(plan));
  runner.start(0);
  sim.run(10 * sim::kSecond);
  ASSERT_TRUE(runner.done());
  // Dependency gating held: every non-root send started after its parent's
  // delivery.
  for (int f = 0; f < runner.plan().num_flows(); ++f) {
    for (const auto& s : runner.plan().steps_of_flow(f)) {
      const auto& r = runner.record(f, s.step);
      if (s.has_dependency()) {
        EXPECT_NE(r.dep_ready_time, sim::kNever);
        EXPECT_GE(r.start_time, r.dep_ready_time);
      }
    }
  }
}

TEST(TreeBroadcast, VedrfolnirMonitorsItEndToEnd) {
  sim::Simulator sim;
  net::NetConfig cfg;
  net::Network network(sim, net::make_fat_tree(4, cfg), cfg);
  const auto all = network.topology().hosts();
  std::vector<NodeId> participants(all.begin(), all.begin() + 8);
  auto plan = CollectivePlan::tree_broadcast(0, participants, 2 * 1024 * 1024);
  CollectiveRunner runner(network, std::move(plan));
  core::Vedrfolnir vedr(network, runner);

  const net::FlowKey bg{all[12], participants[1], 100, 200};
  network.host(participants[1]).expect_flow(bg, 16 * 1024 * 1024);
  sim.schedule_at(0, [&network, &all, bg] {
    network.host(all[12]).start_flow(bg, 16 * 1024 * 1024);
  });

  runner.start(0);
  sim.run(10 * sim::kSecond);
  ASSERT_TRUE(runner.done());
  const auto diag = vedr.diagnose();
  EXPECT_TRUE(diag.detects_flow(bg)) << diag.summary();
  EXPECT_FALSE(diag.critical_path.empty());
}

TEST(TreeBroadcast, RejectsTooFew) {
  EXPECT_THROW(CollectivePlan::tree_broadcast(0, hosts(1), 100), std::invalid_argument);
}

}  // namespace
}  // namespace vedr::collective
