// Logical data-movement validation: executing a plan's transfers on paper
// must implement the collective's semantics (every host ends with the right
// chunks). Complements the packet-level runner tests.
#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "collective/plan.h"

namespace vedr::collective {
namespace {

std::vector<NodeId> hosts(int n) {
  std::vector<NodeId> v(static_cast<std::size_t>(n));
  std::iota(v.begin(), v.end(), 0);
  return v;
}

/// Replays the plan's transfers respecting step order; host state is the
/// set of chunk ids it holds (reduce semantics treated as acquiring the
/// partial/complete chunk).
std::vector<std::set<int>> replay_ring(const CollectivePlan& p, int n) {
  std::vector<std::set<int>> has(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) has[static_cast<std::size_t>(i)].insert(i);
  for (int s = 0; s < p.num_steps(); ++s) {
    std::vector<std::pair<int, int>> deliveries;
    for (int f = 0; f < n; ++f) {
      const StepSpec& spec = p.step(f, s);
      deliveries.emplace_back(spec.dst, spec.chunk_id);
    }
    for (const auto& [dst, chunk] : deliveries)
      has[static_cast<std::size_t>(dst)].insert(chunk);
  }
  return has;
}

class RingDataMovement : public ::testing::TestWithParam<int> {};

TEST_P(RingDataMovement, AllGatherEveryHostHasEverything) {
  const int n = GetParam();
  const auto p = CollectivePlan::ring(0, OpType::kAllGather, hosts(n), 100);
  const auto state = replay_ring(p, n);
  for (int i = 0; i < n; ++i)
    EXPECT_EQ(state[static_cast<std::size_t>(i)].size(), static_cast<std::size_t>(n))
        << "host " << i;
}

TEST_P(RingDataMovement, SenderAlwaysHoldsWhatItSends) {
  const int n = GetParam();
  for (auto op : {OpType::kAllGather, OpType::kReduceScatter}) {
    const auto p = CollectivePlan::ring(0, op, hosts(n), 100);
    std::vector<std::set<int>> has(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) has[static_cast<std::size_t>(i)].insert(i);
    for (int s = 0; s < p.num_steps(); ++s) {
      std::vector<std::pair<int, int>> deliveries;
      for (int f = 0; f < n; ++f) {
        const StepSpec& spec = p.step(f, s);
        EXPECT_TRUE(has[static_cast<std::size_t>(f)].count(spec.chunk_id) > 0)
            << to_string(op) << " flow " << f << " step " << s;
        deliveries.emplace_back(spec.dst, spec.chunk_id);
      }
      for (const auto& [dst, chunk] : deliveries)
        has[static_cast<std::size_t>(dst)].insert(chunk);
    }
  }
}

TEST_P(RingDataMovement, ReduceScatterEachChunkVisitsEveryHost) {
  // In ring reduce-scatter, chunk c travels the whole ring accumulating
  // partial sums: across the P-1 steps it must be transferred P-1 times.
  const int n = GetParam();
  const auto p = CollectivePlan::ring(0, OpType::kReduceScatter, hosts(n), 100);
  std::vector<int> transfers(static_cast<std::size_t>(n), 0);
  for (int f = 0; f < n; ++f)
    for (const auto& s : p.steps_of_flow(f)) transfers[static_cast<std::size_t>(s.chunk_id)]++;
  for (int c = 0; c < n; ++c) EXPECT_EQ(transfers[static_cast<std::size_t>(c)], n - 1);
}

INSTANTIATE_TEST_SUITE_P(Sizes, RingDataMovement, ::testing::Values(2, 3, 4, 8, 16));

class HdDataMovement : public ::testing::TestWithParam<int> {};

TEST_P(HdDataMovement, AllGatherBlocksDoubleUntilComplete) {
  const int n = GetParam();
  const auto p = CollectivePlan::halving_doubling(0, OpType::kAllGather, hosts(n), 100);
  // Replay: host state is a set of chunk ids; at step s partners exchange
  // their full current blocks.
  std::vector<std::set<int>> has(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) has[static_cast<std::size_t>(i)].insert(i);
  for (int s = 0; s < p.num_steps(); ++s) {
    std::vector<std::pair<int, std::set<int>>> deliveries;
    for (int f = 0; f < n; ++f) {
      const StepSpec& spec = p.step(f, s);
      deliveries.emplace_back(spec.dst, has[static_cast<std::size_t>(f)]);
    }
    for (auto& [dst, block] : deliveries)
      has[static_cast<std::size_t>(dst)].insert(block.begin(), block.end());
    // After step s every host holds a 2^(s+1) block.
    for (int i = 0; i < n; ++i)
      EXPECT_EQ(has[static_cast<std::size_t>(i)].size(), std::size_t{1} << (s + 1));
  }
  for (int i = 0; i < n; ++i)
    EXPECT_EQ(has[static_cast<std::size_t>(i)].size(), static_cast<std::size_t>(n));
}

TEST_P(HdDataMovement, PartnersAreMutual) {
  const int n = GetParam();
  for (auto op : {OpType::kAllGather, OpType::kReduceScatter, OpType::kAllReduce}) {
    const auto p = CollectivePlan::halving_doubling(0, op, hosts(n), 100);
    for (int s = 0; s < p.num_steps(); ++s) {
      for (int f = 0; f < n; ++f) {
        const StepSpec& mine = p.step(f, s);
        const int partner = mine.dst;  // participants are 0..n-1 here
        const StepSpec& theirs = p.step(partner, s);
        EXPECT_EQ(theirs.dst, f) << to_string(op) << " step " << s;
        EXPECT_EQ(theirs.bytes, mine.bytes);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, HdDataMovement, ::testing::Values(2, 4, 8, 16));

}  // namespace
}  // namespace vedr::collective
