#include "anomaly/injectors.h"

#include <gtest/gtest.h>

#include "net/host.h"
#include "net/network.h"
#include "net/switch.h"
#include "sim/simulator.h"

namespace vedr::anomaly {
namespace {

TEST(Injectors, BackgroundKeyRoundTrip) {
  const auto key = background_key(3, 7, 9);
  EXPECT_EQ(key.src, 7);
  EXPECT_EQ(key.dst, 9);
  EXPECT_TRUE(is_background(key));
  EXPECT_FALSE(is_background(net::FlowKey{7, 9, 9000, 1000}));
}

TEST(Injectors, FlowStartsAtScheduledTime) {
  sim::Simulator sim;
  net::Network net(sim, net::make_star(3, net::NetConfig{}));
  const InjectedFlow f{background_key(0, 0, 2), 1024 * 1024, 500 * sim::kMicrosecond};
  Tick done = sim::kNever;
  inject_flow(net, f, [&](Tick t) { done = t; });
  sim.run(499 * sim::kMicrosecond);
  EXPECT_FALSE(net.host(0).flow_active(f.key));
  sim.run();
  ASSERT_NE(done, sim::kNever);
  EXPECT_GT(done, f.start);
  const Tick ideal = net.ideal_fct(f.key, f.bytes);
  EXPECT_LT(done, f.start + 2 * ideal);
}

TEST(Injectors, StormForcesAndReleasesPause) {
  sim::Simulator sim;
  net::Network net(sim, net::make_star(3, net::NetConfig{}));
  const net::NodeId sw = net.switches()[0];
  const StormSpec storm{net::PortRef{sw, 0}, 100 * sim::kMicrosecond, 1 * sim::kMillisecond};
  inject_storm(net, storm);

  bool paused_during = false, paused_after = false;
  sim.schedule_at(600 * sim::kMicrosecond,
                  [&] { paused_during = net.switch_at(sw).sending_pause_on(0); });
  sim.schedule_at(2 * sim::kMillisecond,
                  [&] { paused_after = net.switch_at(sw).sending_pause_on(0); });
  sim.run();
  EXPECT_TRUE(paused_during);
  EXPECT_FALSE(paused_after);

  // The injected cause is logged for provenance.
  const auto& causes = net.switch_at(sw).telem().all_causes();
  ASSERT_FALSE(causes.empty());
  EXPECT_TRUE(causes.front().injected);
}

TEST(Injectors, StormActuallyHaltsTraffic) {
  sim::Simulator sim;
  net::Network net(sim, net::make_star(3, net::NetConfig{}));
  const net::NodeId sw = net.switches()[0];
  const net::FlowKey key = background_key(0, 0, 2);
  Tick done = sim::kNever;
  net.host(2).expect_flow(key, 512 * 1024);
  net.host(0).start_flow(key, 512 * 1024, [&](const net::FlowKey&, Tick t) { done = t; });
  // Pause host 0 via the switch port facing it for 3 ms.
  inject_storm(net, {net::PortRef{sw, 0}, 0, 3 * sim::kMillisecond});
  sim.run();
  ASSERT_NE(done, sim::kNever);
  EXPECT_GT(done, 3 * sim::kMillisecond);
}

}  // namespace
}  // namespace vedr::anomaly
