// Serve-plane stress for the TSan lane: many tenants ingest golden-corpus
// streams concurrently while a poller hammers the observability surface
// (/metrics Prometheus text, /sessions JSON, per-session queue counters) the
// whole time. Correctness bar: no data race reports, exact queue accounting,
// and every session finishing with its footer digest matched.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "replay/trace_reader.h"
#include "serve/server.h"
#include "serve/verdict.h"

namespace vedr {
namespace {

std::string corpus_path(const std::string& name) {
  return std::string(VEDR_REPLAY_CORPUS_DIR) + "/" + name + ".vtrc";
}

struct DecodedTrace {
  std::vector<std::pair<replay::TraceRecord, std::uint64_t>> records;
  std::uint64_t bytes = 0;
};

DecodedTrace decode(const std::string& name) {
  DecodedTrace t;
  replay::TraceReader reader(corpus_path(name));
  replay::TraceRecord rec;
  std::uint64_t offset = reader.bytes_read();
  while (reader.next(rec) == replay::TraceStatus::kOk) {
    t.records.emplace_back(rec, offset);
    offset = reader.bytes_read();
  }
  EXPECT_EQ(reader.error().status, replay::TraceStatus::kOk) << reader.error().str();
  t.bytes = reader.bytes_read();
  return t;
}

class CountingSink : public serve::VerdictSink {
 public:
  void on_verdict(const std::string& line) override {
    EXPECT_FALSE(line.empty());
    lines_.fetch_add(1, std::memory_order_relaxed);
  }
  std::uint64_t lines() const { return lines_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> lines_{0};
};

TEST(ServeStress, ManyTenantsIngestWhilePollerScrapes) {
  const std::vector<std::string> names = {"contention", "incast", "storm",
                                          "backpressure"};
  std::vector<DecodedTrace> corpus;
  corpus.reserve(names.size());
  for (const auto& n : names) corpus.push_back(decode(n));

  constexpr int kTenants = 8;
  CountingSink sink;
  serve::ServerConfig cfg;
  cfg.shards = 4;
  // Small bound on purpose: producers and shard pumps constantly cross the
  // queue's backpressure path, the interleavings TSan is here for.
  cfg.session.queue_capacity = 16;
  serve::Server server(cfg, &sink);

  std::vector<std::uint64_t> sids;
  sids.reserve(kTenants);
  for (int t = 0; t < kTenants; ++t)
    sids.push_back(server.open_session(names[static_cast<std::size_t>(t) % names.size()] +
                                       "-" + std::to_string(t)));

  std::vector<std::thread> producers;
  producers.reserve(kTenants);
  for (int t = 0; t < kTenants; ++t) {
    const DecodedTrace& trace = corpus[static_cast<std::size_t>(t) % corpus.size()];
    const std::uint64_t sid = sids[static_cast<std::size_t>(t)];
    producers.emplace_back([&server, &trace, sid] {
      for (const auto& [rec, offset] : trace.records)
        ASSERT_TRUE(server.offer(sid, rec, offset));
      server.close_session(sid, replay::TraceError{}, trace.bytes);
    });
  }

  // The poller: scrapes every observability surface for the entire ingest
  // window, exactly what a Prometheus scraper does to the live daemon.
  std::atomic<bool> stop_poller{false};
  std::thread poller([&server, &sids, &stop_poller] {
    while (!stop_poller.load(std::memory_order_acquire)) {
      const std::string prom = server.prometheus();
      EXPECT_NE(prom.find("vedr_serve_queue_pushed"), std::string::npos);
      const std::string sessions = server.sessions_json();
      EXPECT_NE(sessions.find("\"sessions\":["), std::string::npos);
      for (const std::uint64_t sid : sids) {
        const serve::Session* s = server.find_session(sid);
        ASSERT_NE(s, nullptr);
        const common::QueueStats q = s->queue_stats();
        EXPECT_LE(q.popped, q.pushed);
        EXPECT_EQ(q.dropped, 0u);  // block policy: losslessness is observable live
        (void)s->frames_ingested();
        (void)s->steps_closed();
      }
      std::this_thread::yield();
    }
  });

  for (auto& p : producers) p.join();
  server.wait_all_finished();
  stop_poller.store(true, std::memory_order_release);
  poller.join();

  std::uint64_t total_offered = 0;
  for (int t = 0; t < kTenants; ++t) {
    const serve::Session* s = server.find_session(sids[static_cast<std::size_t>(t)]);
    ASSERT_NE(s, nullptr);
    EXPECT_EQ(s->state(), serve::SessionState::kFinished);
    EXPECT_TRUE(s->digest_matched());
    const DecodedTrace& trace = corpus[static_cast<std::size_t>(t) % corpus.size()];
    EXPECT_EQ(s->frames_ingested(), trace.records.size());
    const common::QueueStats q = s->queue_stats();
    EXPECT_EQ(q.pushed, trace.records.size());
    EXPECT_EQ(q.popped, q.pushed);
    EXPECT_EQ(q.dropped, 0u);
    total_offered += trace.records.size();
  }
  const obs::MetricsSnapshot snap = server.metrics_snapshot();
  EXPECT_EQ(snap.counters.at("serve.queue_pushed"),
            static_cast<std::int64_t>(total_offered));
  EXPECT_EQ(snap.counters.at("serve.queue_dropped"), 0);
  EXPECT_EQ(snap.counters.at("serve.sessions_open"), 0);
  EXPECT_GT(sink.lines(), static_cast<std::uint64_t>(kTenants));  // steps + finals
  server.shutdown();
}

TEST(ServeStress, ShutdownReleasesBlockedProducers) {
  // A producer wedged on a full queue (consumerless: no pump will ever run
  // because we never schedule one — we drive the Session directly) must be
  // released by shutdown's queue abort.
  serve::SessionConfig cfg;
  cfg.queue_capacity = 1;
  serve::Session session(1, "wedged", 0, cfg);
  ASSERT_TRUE(session.offer(replay::TraceRecord{}, 0));
  std::thread producer([&session] {
    EXPECT_FALSE(session.offer(replay::TraceRecord{}, 1));  // blocks, then aborted
  });
  session.abort_queue();
  producer.join();
}

}  // namespace
}  // namespace vedr
