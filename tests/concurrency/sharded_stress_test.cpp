// Sharded-engine stress lane. Runs in every build, but its purpose is the
// VEDR_SANITIZE=thread configuration: CI's TSan job runs this binary with
// --gtest_filter='Sharded*' to prove the window protocol, the handoff
// rings, and the shard-aware packet pool are race-free under real
// multi-worker interleavings. Keep every test name prefixed "Sharded".

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "common/spsc_ring.h"
#include "eval/experiment.h"
#include "net/packet_pool.h"
#include "net/routing.h"
#include "sim/shard.h"
#include "sim/sharded_engine.h"

namespace vedr {
namespace {

TEST(ShardedStress, SpscRingProducerConsumerTorture) {
  // Tiny capacity on purpose: force constant wrap-around and heavy use of
  // the mutex spill path while a consumer drains concurrently. Strict FIFO
  // across the ring/spill boundary is only promised at quiesce points (the
  // engine drains at window barriers); under concurrent drain the contract
  // is weaker and is what we assert: nothing lost, nothing duplicated.
  common::SpscRing<std::uint64_t> ring(8);
  constexpr std::uint64_t kItems = 200000;

  std::thread producer([&ring] {
    for (std::uint64_t i = 0; i < kItems; ++i) ring.push(i);
  });

  std::vector<std::uint64_t> got;
  got.reserve(kItems);
  while (got.size() < kItems) ring.drain_into(got);
  producer.join();
  ring.drain_into(got);

  EXPECT_TRUE(ring.empty());
  ASSERT_EQ(got.size(), kItems);
  std::sort(got.begin(), got.end());
  for (std::uint64_t i = 0; i < kItems; ++i)
    ASSERT_EQ(got[static_cast<std::size_t>(i)], i) << "ring lost or duplicated an element";
}

TEST(ShardedStress, SpscRingFifoAtQuiescePoints) {
  // The engine's actual cadence: the producer pushes a burst (overflowing
  // into the spill list), a barrier quiesces it, then the consumer drains —
  // and must see exact push order every window.
  common::SpscRing<int> ring(8);
  int next = 0;
  for (int window = 0; window < 200; ++window) {
    std::thread producer([&ring, base = next] {
      for (int i = 0; i < 37; ++i) ring.push(base + i);
    });
    producer.join();  // the window barrier
    std::vector<int> batch;
    ring.drain_into(batch);
    ASSERT_EQ(batch.size(), 37u);
    for (const int v : batch) ASSERT_EQ(v, next++) << "quiesced drain broke FIFO order";
  }
}

TEST(ShardedStress, PacketPoolWindowedExchange) {
  // Emulates the engine's window cadence with raw threads: every shard
  // acquires packets, releases a mix of its own and its neighbour's slots,
  // then all flush, sync, and drain — repeatedly. Any missing ordering in
  // the pool's publish path shows up as a TSan race or a double-recycle.
  constexpr int kShards = 4;
  constexpr int kWindows = 50;
  constexpr int kPerWindow = 64;
  net::PacketPool pool(kShards);
  std::atomic<int> window_gate{0};

  auto worker = [&](int shard) {
    sim::ShardScope scope(shard);
    for (int w = 0; w < kWindows; ++w) {
      std::vector<net::PacketRef> mine;
      for (int i = 0; i < kPerWindow; ++i) {
        net::Packet p;
        p.seq = static_cast<std::uint32_t>(shard * 100000 + w * 1000 + i);
        mine.push_back(pool.acquire(p));
      }
      // Read every slot back (cross-chunk at() while other shards grow the
      // table): contents must be exactly what this shard wrote.
      for (int i = 0; i < kPerWindow; ++i)
        ASSERT_EQ(pool.at(mine[static_cast<std::size_t>(i)]).seq,
                  static_cast<std::uint32_t>(shard * 100000 + w * 1000 + i));
      for (const net::PacketRef r : mine) pool.release(r);
      pool.flush_returns(shard);

      // Window barrier: everyone's flush happens-before anyone's drain.
      window_gate.fetch_add(1, std::memory_order_acq_rel);
      while (window_gate.load(std::memory_order_acquire) < (w + 1) * kShards)
        std::this_thread::yield();
      pool.drain_returns(shard);
    }
  };

  std::vector<std::thread> threads;
  for (int s = 0; s < kShards; ++s) threads.emplace_back(worker, s);
  for (auto& t : threads) t.join();
  EXPECT_EQ(pool.in_use(), 0u);
}

TEST(ShardedStress, EngineHookAndWindowProtocol) {
  // Hammer the two-barrier window loop itself: many domains, few events per
  // window, hooks touching per-domain state — the shape where a missing
  // happens-before edge between flush (window N) and drain (window N+1)
  // would race.
  constexpr int kDomains = 6;
  sim::ShardedEngine engine(kDomains, /*lookahead=*/3, /*num_workers=*/kDomains);
  std::vector<std::uint64_t> per_domain_hook_runs(kDomains, 0);
  engine.set_drain_hook([&](int d) { ++per_domain_hook_runs[static_cast<std::size_t>(d)]; });

  constexpr int kEvents = 200;
  std::atomic<std::uint64_t> fired{0};
  for (int d = 0; d < kDomains; ++d) {
    sim::Simulator& sim = engine.domain(d);
    for (int i = 0; i < kEvents; ++i)
      sim.schedule_at(i * 2 + d % 2, [&fired] { fired.fetch_add(1, std::memory_order_relaxed); });
  }

  engine.run(1000);
  EXPECT_EQ(fired.load(), static_cast<std::uint64_t>(kDomains) * kEvents);
  for (int d = 0; d < kDomains; ++d) EXPECT_GT(per_domain_hook_runs[static_cast<std::size_t>(d)], 0u);
}

TEST(ShardedStress, FullCaseBackpressureSharded) {
  // End to end under maximum workers: the real fabric, collective, PFC
  // backpressure injection, per-domain telemetry, buffered diagnosis
  // ingestion — the complete surface the TSan lane exists to certify.
  eval::RunConfig cfg;
  cfg.shards = 8;
  eval::ScenarioParams params;
  params.scale = 1.0 / 256.0;
  const net::Topology topo = net::make_fat_tree(4, cfg.netcfg);
  const auto routing = net::RoutingTable::shortest_paths(topo);
  const auto spec =
      eval::make_scenario(eval::ScenarioType::kPfcBackpressure, 0, topo, routing, params);

  const auto first = eval::run_case(spec, eval::SystemKind::kVedrfolnir, cfg);
  const auto second = eval::run_case(spec, eval::SystemKind::kVedrfolnir, cfg);
  EXPECT_EQ(first.sim_events, second.sim_events);
  EXPECT_EQ(first.packets_delivered, second.packets_delivered);
  EXPECT_EQ(first.cc_time, second.cc_time);
  EXPECT_STREQ(first.outcome.label(), second.outcome.label());
}

}  // namespace
}  // namespace vedr
