// Multithreaded stress tests for the shared-state layers that the sharded
// engine and streaming daemon (ROADMAP items 1 and 3) will sit on. They run
// in every lane, but their real job is giving ThreadSanitizer genuine
// interleavings to check: build with `cmake -DVEDR_SANITIZE=thread` and run
// this binary to prove the obs layer, StatsRegistry, check hooks, and the
// suite work queue are race-free under contention.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "common/check.h"
#include "common/spsc_ring.h"
#include "eval/experiment.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/windowed.h"
#include "sim/stats.h"

namespace vedr {
namespace {

constexpr int kThreads = 8;

// --- StatsRegistry ----------------------------------------------------------

TEST(TsanStress, StatsRegistryConcurrentKeyedAccumulation) {
  sim::StatsRegistry reg;
  constexpr int kOps = 4000;

  std::vector<std::thread> pool;
  pool.reserve(kThreads + 1);
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&reg] {
      for (int i = 0; i < kOps; ++i) {
        reg.add_counter("shared.counter");
        reg.observe("shared.hist", i % 1024);
        reg.add_sample("shared.summary", static_cast<double>(i));
      }
    });
  }
  // A concurrent reader: keyed reads and whole-map snapshots must be safe
  // while writers are live (the streaming daemon scrapes Prometheus mid-run).
  std::atomic<bool> done{false};
  pool.emplace_back([&reg, &done] {
    while (!done.load(std::memory_order_acquire)) {
      (void)reg.counter("shared.counter");
      (void)obs::snapshot(reg);
    }
  });
  for (int t = 0; t < kThreads; ++t) pool[static_cast<std::size_t>(t)].join();
  done.store(true, std::memory_order_release);
  pool.back().join();

  // The mutex makes keyed accumulation lossless: exact totals, not "close".
  EXPECT_EQ(reg.counter("shared.counter"), static_cast<std::int64_t>(kThreads) * kOps);
  EXPECT_EQ(reg.hist("shared.hist").count(), static_cast<std::uint64_t>(kThreads) * kOps);
  EXPECT_EQ(reg.summary("shared.summary").count(), static_cast<std::uint64_t>(kThreads) * kOps);
}

TEST(TsanStress, StatsRegistryConcurrentCellInterning) {
  sim::StatsRegistry reg;
  constexpr int kOps = 20000;

  // Each thread interns its own cells (per-thread names) and bumps through
  // the pointers lock-free — the single-writer cell contract. Interning
  // itself contends on the registry mutex from all threads at once.
  std::vector<std::thread> pool;
  pool.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&reg, t] {
      const std::string name = "cell.worker." + std::to_string(t);
      std::int64_t* cell = reg.counter_cell(name);
      obs::Histogram* hist = reg.hist_cell(name + ".hist");
      for (int i = 0; i < kOps; ++i) {
        ++*cell;
        hist->add(i % 4096);
      }
    });
  }
  for (auto& th : pool) th.join();

  for (int t = 0; t < kThreads; ++t) {
    const std::string name = "cell.worker." + std::to_string(t);
    EXPECT_EQ(reg.counter(name), kOps);
    EXPECT_EQ(reg.hist(name + ".hist").count(), static_cast<std::uint64_t>(kOps));
  }
}

// --- obs trace rings --------------------------------------------------------

TEST(TsanStress, ConcurrentSpanEmissionAndDropAccounting) {
  // Small rings so every thread wraps: the drop accounting is exercised, not
  // just the happy path.
  obs::trace_enable(/*events_per_thread=*/1024);
  obs::trace_reset();
  constexpr int kIters = 2000;  // 3 events per iteration, > ring capacity

  std::vector<std::thread> pool;
  pool.reserve(kThreads + 1);
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([] {
      for (int i = 0; i < kIters; ++i) {
        VEDR_SPAN("stress", "iteration");
        VEDR_INSTANT("stress", "tick", /*sim_ns=*/i, /*arg=*/static_cast<std::uint64_t>(i));
      }
    });
  }
  // Drop/write accounting must be readable while recorders are live.
  std::atomic<bool> done{false};
  pool.emplace_back([&done] {
    while (!done.load(std::memory_order_acquire)) {
      const obs::TraceStats s = obs::trace_stats();
      EXPECT_EQ(s.written, s.retained + s.dropped);
    }
  });
  for (int t = 0; t < kThreads; ++t) pool[static_cast<std::size_t>(t)].join();
  done.store(true, std::memory_order_release);
  pool.back().join();

  const obs::TraceStats s = obs::trace_stats();
  // Every thread wrote exactly 3 events per iteration (span B/E + instant);
  // emitting threads beyond these workers (none here) would break equality.
  EXPECT_GE(s.threads, static_cast<std::size_t>(kThreads));
  EXPECT_EQ(s.written, static_cast<std::uint64_t>(kThreads) * kIters * 3);
  EXPECT_EQ(s.written, s.retained + s.dropped);
  EXPECT_GT(s.dropped, 0u) << "rings were sized to wrap; drop path untested";

  // Export after quiesce parses as a trace (schema checked in obs tests).
  const std::string json = obs::chrome_trace_json();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  obs::trace_disable();
  obs::trace_reset();
}

// --- logger rate limiter ----------------------------------------------------

// One shared call site for every thread: the macro's static LogSite is the
// contended state (PR 5 code that had never run under TSan).
void log_from_shared_site(int i) {
  VEDR_LOG_DEBUG("stress", "worker line %d", i);
}

TEST(TsanStress, LoggerConcurrentRateLimiting) {
  // Debug threshold so log_write runs its full path: window bookkeeping,
  // suppression counting, and the fprintf tail for the first ~32 lines.
  obs::set_log_threshold(obs::LogLevel::kDebug);
  std::vector<std::thread> pool;
  pool.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([] {
      for (int i = 0; i < 5000; ++i) log_from_shared_site(i);
    });
  }
  // Concurrent threshold flips race against the level check by design (it is
  // an atomic); flip it mid-flight to cover both branches.
  obs::set_log_threshold(obs::LogLevel::kWarn);
  for (auto& th : pool) th.join();
  obs::set_log_threshold(obs::LogLevel::kInfo);
}

// --- check failure hooks ----------------------------------------------------

TEST(TsanStress, CheckFailuresAcrossThreads) {
  common::ScopedThrowOnCheckFailure throw_scope;  // installed before spawn
  std::atomic<int> caught{0};
  std::vector<std::thread> pool;
  pool.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&caught, t] {
      for (int i = 0; i < 200; ++i) {
        try {
          VEDR_CHECK(t < 0, "stress failure on thread ", t);
        } catch (const common::CheckFailure&) {
          caught.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& th : pool) th.join();
  EXPECT_EQ(caught.load(), kThreads * 200);
}

// --- windowed metrics -------------------------------------------------------

TEST(TsanStress, WindowedMetricsWritersScrapersRoller) {
  // 1ms intervals on a small ring so real wall time rolls slots constantly:
  // writers, a scraper, and a roller all hit the same rings at once — the
  // serve daemon's scrape-while-recording shape (DESIGN.md §15).
  constexpr std::uint64_t kMs = 1'000'000ULL;
  obs::WindowedHistogram hist(kMs, 16);
  obs::WindowedRate rate(kMs, 16);
  obs::WindowedMax peak(kMs, 16);
  constexpr int kOps = 5000;

  std::vector<std::thread> pool;
  pool.reserve(kThreads + 2);
  std::atomic<bool> done{false};
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&hist, &rate, &peak, t] {
      for (int i = 0; i < kOps; ++i) {
        const std::uint64_t now = obs::wall_now_ns();
        hist.record(i % 1024, now);
        rate.add(1, now);
        peak.record(static_cast<std::int64_t>(t * kOps + i), now);
      }
    });
  }
  // The scraper: window merges and rate math while writers are live. Results
  // are inherently racy snapshots; the invariant is internal consistency.
  pool.emplace_back([&hist, &rate, &peak, &done] {
    while (!done.load(std::memory_order_acquire)) {
      const std::uint64_t now = obs::wall_now_ns();
      const obs::Histogram w = hist.window(10 * kMs, now);
      EXPECT_GE(w.value_at_quantile(0.99), w.value_at_quantile(0.5));
      (void)rate.rate_per_sec(10 * kMs, now);
      EXPECT_GE(peak.window_max(16 * kMs, now), 0);
    }
  });
  // The "roller": retained-sample accounting alongside eviction-by-write —
  // never more samples alive in the ring than were ever recorded.
  pool.emplace_back([&hist, &done] {
    while (!done.load(std::memory_order_acquire))
      EXPECT_LE(hist.retained_count(), static_cast<std::uint64_t>(kThreads) * kOps);
  });
  for (int t = 0; t < kThreads; ++t) pool[static_cast<std::size_t>(t)].join();
  done.store(true, std::memory_order_release);
  pool[kThreads].join();
  pool[kThreads + 1].join();

  // Lossless over the whole run: a wide window (ring depth) after quiesce
  // holds at most everything, and a count query right now can only have lost
  // samples to eviction, never duplicated them.
  const std::uint64_t now = obs::wall_now_ns();
  EXPECT_LE(hist.window(16 * kMs, now).count(),
            static_cast<std::uint64_t>(kThreads) * kOps);
  EXPECT_LE(rate.sum_in_window(16 * kMs, now),
            static_cast<std::uint64_t>(kThreads) * kOps);
}

// --- SPSC ring watermark ----------------------------------------------------

TEST(TsanStress, SpscRingWatermarkResetVsProducer) {
  // One producer fills the ring (no consumer, so occupancy climbs
  // monotonically to exactly kPushes) while a sampler thread hammers the
  // read-and-reset watermark. The CAS-max in note_occupancy must retry past
  // each racing exchange(0): the max over everything the sampler took plus
  // the final residue equals the true peak — no sample of a later-higher
  // occupancy may be lost to a reset.
  constexpr std::size_t kPushes = 800;
  common::SpscRing<int> ring(1024);
  ASSERT_GE(ring.capacity(), kPushes) << "test requires zero spills";

  std::atomic<bool> producer_done{false};
  std::size_t max_seen = 0;
  std::thread sampler([&ring, &producer_done, &max_seen] {
    while (!producer_done.load(std::memory_order_acquire)) {
      const std::size_t w = ring.take_watermark();
      if (w > max_seen) max_seen = w;
    }
  });
  for (std::size_t i = 0; i < kPushes; ++i) ring.push(static_cast<int>(i));
  producer_done.store(true, std::memory_order_release);
  sampler.join();

  const std::size_t residue = ring.take_watermark();
  EXPECT_EQ(std::max(max_seen, residue), kPushes)
      << "a reset raced a higher peak out of existence";
  EXPECT_EQ(ring.spills(), 0u);
  std::vector<int> out;
  EXPECT_EQ(ring.drain_into(out), kPushes);
}

// --- eval suite work queue --------------------------------------------------

TEST(TsanStress, SuiteWorkQueueUnderContention) {
  eval::RunConfig cfg;
  eval::ScenarioParams params;
  params.scale = 1.0 / 256.0;

  // More workers than cases forces claim contention on the fetch_add and
  // leaves some workers exiting without work — the empty-claim path.
  const auto seq = eval::run_scenario_suite(eval::ScenarioType::kFlowContention, 6,
                                            eval::SystemKind::kVedrfolnir, cfg, params,
                                            /*threads=*/1);
  const auto par = eval::run_scenario_suite(eval::ScenarioType::kFlowContention, 6,
                                            eval::SystemKind::kVedrfolnir, cfg, params,
                                            /*threads=*/kThreads);
  ASSERT_EQ(seq.size(), par.size());
  for (std::size_t i = 0; i < seq.size(); ++i) {
    EXPECT_EQ(seq[i].case_id, par[i].case_id);
    EXPECT_EQ(seq[i].sim_events, par[i].sim_events);
    EXPECT_EQ(seq[i].packets_delivered, par[i].packets_delivered);
    EXPECT_STREQ(seq[i].outcome.label(), par[i].outcome.label());
  }
}

}  // namespace
}  // namespace vedr
