#include "eval/experiment.h"

#include <gtest/gtest.h>

#include "net/routing.h"
#include "net/trace.h"

namespace vedr::eval {
namespace {

RunConfig tiny_config() { return RunConfig{}; }

ScenarioParams tiny_params() {
  ScenarioParams p;
  p.scale = 1.0 / 256.0;
  return p;
}

TEST(Experiment, SystemNames) {
  EXPECT_STREQ(to_string(SystemKind::kVedrfolnir), "Vedrfolnir");
  EXPECT_STREQ(to_string(SystemKind::kHawkeyeMaxR), "Hawkeye-MaxR");
  EXPECT_STREQ(to_string(SystemKind::kHawkeyeMinR), "Hawkeye-MinR");
  EXPECT_STREQ(to_string(SystemKind::kFullPolling), "FullPolling");
}

TEST(Experiment, SuiteSummaryAggregates) {
  std::vector<CaseResult> results(3);
  results[0].outcome.tp = true;
  results[0].telemetry_bytes = 100;
  results[0].bandwidth_bytes = 200;
  results[0].cc_time = 1000 * sim::kMicrosecond;
  results[1].outcome.fp = true;
  results[1].telemetry_bytes = 300;
  results[1].bandwidth_bytes = 400;
  results[1].cc_time = 3000 * sim::kMicrosecond;
  results[2].outcome.fn = true;

  const auto s = SuiteSummary::from(results);
  EXPECT_EQ(s.cases, 3);
  EXPECT_EQ(s.pr.tp, 1);
  EXPECT_EQ(s.pr.fp, 1);
  EXPECT_EQ(s.pr.fn, 1);
  EXPECT_DOUBLE_EQ(s.mean_telemetry_bytes, 400.0 / 3);
  EXPECT_DOUBLE_EQ(s.mean_bandwidth_bytes, 200.0);
  EXPECT_NEAR(s.mean_cc_time_us, 4000.0 / 3, 1e-9);
}

TEST(Experiment, EmptySummary) {
  const auto s = SuiteSummary::from({});
  EXPECT_EQ(s.cases, 0);
  EXPECT_EQ(s.mean_telemetry_bytes, 0.0);
}

TEST(Experiment, RunScenarioSuiteReturnsOrderedResults) {
  const auto results = run_scenario_suite(ScenarioType::kFlowContention, 3,
                                          SystemKind::kVedrfolnir, tiny_config(), tiny_params(),
                                          /*threads=*/1);
  ASSERT_EQ(results.size(), 3u);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(results[static_cast<std::size_t>(i)].case_id, i);
    EXPECT_EQ(results[static_cast<std::size_t>(i)].scenario, ScenarioType::kFlowContention);
    EXPECT_TRUE(results[static_cast<std::size_t>(i)].cc_completed);
  }
}

TEST(Experiment, ThreadedSuiteMatchesSequential) {
  const auto seq = run_scenario_suite(ScenarioType::kIncast, 4, SystemKind::kVedrfolnir,
                                      tiny_config(), tiny_params(), 1);
  const auto par = run_scenario_suite(ScenarioType::kIncast, 4, SystemKind::kVedrfolnir,
                                      tiny_config(), tiny_params(), 4);
  ASSERT_EQ(seq.size(), par.size());
  for (std::size_t i = 0; i < seq.size(); ++i) {
    EXPECT_EQ(seq[i].sim_events, par[i].sim_events);
    EXPECT_EQ(seq[i].telemetry_bytes, par[i].telemetry_bytes);
    EXPECT_STREQ(seq[i].outcome.label(), par[i].outcome.label());
  }
}

TEST(Experiment, OverheadCountersConsistent) {
  const net::Topology topo = net::make_fat_tree(4, tiny_config().netcfg);
  const auto routing = net::RoutingTable::shortest_paths(topo);
  const auto spec =
      make_scenario(ScenarioType::kFlowContention, 0, topo, routing, tiny_params());
  const auto r = run_case(spec, SystemKind::kVedrfolnir, tiny_config());
  // Bandwidth = polls + notifications + reports; reports = telemetry bytes.
  EXPECT_EQ(r.bandwidth_bytes, r.telemetry_bytes + r.poll_bytes + r.notify_bytes);
  EXPECT_GE(r.report_count, 0);
}

TEST(Experiment, FullPollingHasNoPollBytes) {
  const net::Topology topo = net::make_fat_tree(4, tiny_config().netcfg);
  const auto routing = net::RoutingTable::shortest_paths(topo);
  const auto spec = make_scenario(ScenarioType::kIncast, 0, topo, routing, tiny_params());
  const auto r = run_case(spec, SystemKind::kFullPolling, tiny_config());
  EXPECT_EQ(r.poll_bytes, 0);
  EXPECT_EQ(r.notify_bytes, 0);
  EXPECT_GT(r.telemetry_bytes, 0);
}

TEST(Experiment, RunCaseDigestIsReproducible) {
  const net::Topology topo = net::make_fat_tree(4, tiny_config().netcfg);
  const auto routing = net::RoutingTable::shortest_paths(topo);
  const auto spec =
      make_scenario(ScenarioType::kFlowContention, 0, topo, routing, tiny_params());
  const std::uint64_t first = run_case_digest(spec, SystemKind::kVedrfolnir, tiny_config());
  const std::uint64_t second = run_case_digest(spec, SystemKind::kVedrfolnir, tiny_config());
  EXPECT_EQ(first, second)
      << "same-seed runs diverged: hidden nondeterminism in the simulator or diagnosis core";
  EXPECT_NE(first, 0u);
}

TEST(Experiment, RunCaseDigestDistinguishesCases) {
  const net::Topology topo = net::make_fat_tree(4, tiny_config().netcfg);
  const auto routing = net::RoutingTable::shortest_paths(topo);
  const auto spec0 = make_scenario(ScenarioType::kIncast, 0, topo, routing, tiny_params());
  const auto spec1 = make_scenario(ScenarioType::kIncast, 1, topo, routing, tiny_params());
  EXPECT_NE(run_case_digest(spec0, SystemKind::kVedrfolnir, tiny_config()),
            run_case_digest(spec1, SystemKind::kVedrfolnir, tiny_config()));
}

TEST(Experiment, TracerObservationDoesNotChangeOutcome) {
  // Attaching the digest tracer must be observation-only: the traced run's
  // event count and verdict must match an untraced run bit for bit.
  const net::Topology topo = net::make_fat_tree(4, tiny_config().netcfg);
  const auto routing = net::RoutingTable::shortest_paths(topo);
  const auto spec = make_scenario(ScenarioType::kIncast, 0, topo, routing, tiny_params());
  const auto untraced = run_case(spec, SystemKind::kVedrfolnir, tiny_config());

  net::PacketTracer tracer(1);
  std::size_t seen = 0;
  tracer.set_sink([&seen](const net::TraceEvent&) { ++seen; });
  RunConfig cfg = tiny_config();
  cfg.tracer = &tracer;
  const auto traced = run_case(spec, SystemKind::kVedrfolnir, cfg);

  EXPECT_GT(seen, 0u);
  EXPECT_EQ(traced.sim_events, untraced.sim_events);
  EXPECT_EQ(traced.cc_time, untraced.cc_time);
  EXPECT_STREQ(traced.outcome.label(), untraced.outcome.label());
}

}  // namespace
}  // namespace vedr::eval
