// Shard-count invariance for the parallel engine lane (DESIGN.md §14).
//
// The domain decomposition is a function of the topology, never of the
// worker count, so the parallel lane's digest must be bit-identical for
// every --shards N >= 2 — N only picks how many threads execute the fixed
// domains. And --shards 1 must not reroute into the sharded path at all:
// its digest is the serial engine's pinned lane.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "eval/experiment.h"
#include "net/routing.h"

namespace vedr::eval {
namespace {

ScenarioParams tiny_params() {
  ScenarioParams p;
  p.scale = 1.0 / 256.0;
  return p;
}

ScenarioSpec tiny_spec(ScenarioType type) {
  RunConfig cfg;
  const net::Topology topo = net::make_fat_tree(4, cfg.netcfg);
  const auto routing = net::RoutingTable::shortest_paths(topo);
  return make_scenario(type, /*case_id=*/0, topo, routing, tiny_params());
}

std::uint64_t digest_with_shards(const ScenarioSpec& spec, int shards) {
  RunConfig cfg;
  cfg.shards = shards;
  return run_case_digest(spec, SystemKind::kVedrfolnir, cfg);
}

class ShardedInvariance : public ::testing::TestWithParam<ScenarioType> {};

TEST_P(ShardedInvariance, ParallelDigestIdenticalForAnyShardCount) {
  const ScenarioSpec spec = tiny_spec(GetParam());
  // 2, 4, and 8 workers over the same 5 domains (k=4: four pods + core);
  // 8 exercises the worker-clamp path as well.
  const std::uint64_t d2 = digest_with_shards(spec, 2);
  const std::uint64_t d4 = digest_with_shards(spec, 4);
  const std::uint64_t d8 = digest_with_shards(spec, 8);
  EXPECT_NE(d2, 0u);
  EXPECT_EQ(d2, d4) << "parallel digest depends on the worker count";
  EXPECT_EQ(d2, d8) << "parallel digest depends on the worker count";
}

TEST_P(ShardedInvariance, ParallelDigestReproducible) {
  const ScenarioSpec spec = tiny_spec(GetParam());
  EXPECT_EQ(digest_with_shards(spec, 2), digest_with_shards(spec, 2))
      << "same-seed sharded runs diverged: the window protocol leaked "
         "scheduling order into the simulation";
}

TEST_P(ShardedInvariance, ShardsOneStaysOnTheSerialLane) {
  const ScenarioSpec spec = tiny_spec(GetParam());
  RunConfig serial;  // default: shards == 1
  const std::uint64_t pinned = run_case_digest(spec, SystemKind::kVedrfolnir, serial);
  EXPECT_EQ(digest_with_shards(spec, 1), pinned);
}

TEST_P(ShardedInvariance, ShardedRunMatchesSerialOutcome) {
  // The engines schedule the same physics, but same-tick ties at domain
  // boundaries legitimately resolve differently (that is exactly why the
  // parallel lane carries its own digest), so the lanes agree on verdicts
  // and agree tightly — not bit-exactly — on timing and packet counts.
  const ScenarioSpec spec = tiny_spec(GetParam());
  RunConfig serial;
  const CaseResult s = run_case(spec, SystemKind::kVedrfolnir, serial);
  RunConfig sharded;
  sharded.shards = 4;
  const CaseResult p = run_case(spec, SystemKind::kVedrfolnir, sharded);
  EXPECT_EQ(p.cc_completed, s.cc_completed);
  EXPECT_STREQ(p.outcome.label(), s.outcome.label());
  const auto near = [](std::int64_t a, std::int64_t b, double tol) {
    const double denom = std::max<double>(1.0, static_cast<double>(b));
    return std::abs(static_cast<double>(a - b)) / denom < tol;
  };
  EXPECT_TRUE(near(static_cast<std::int64_t>(p.packets_delivered),
                   static_cast<std::int64_t>(s.packets_delivered), 0.02))
      << p.packets_delivered << " vs " << s.packets_delivered;
  // PFC scenarios amplify tie divergence (a pause landing one event earlier
  // shifts whole stall intervals), so completion time gets a wider band.
  EXPECT_TRUE(near(p.cc_time, s.cc_time, 0.15)) << p.cc_time << " vs " << s.cc_time;
}

INSTANTIATE_TEST_SUITE_P(AllScenarios, ShardedInvariance,
                         ::testing::Values(ScenarioType::kFlowContention, ScenarioType::kIncast,
                                           ScenarioType::kPfcStorm,
                                           ScenarioType::kPfcBackpressure),
                         [](const ::testing::TestParamInfo<ScenarioType>& info) {
                           switch (info.param) {
                             case ScenarioType::kFlowContention: return "Contention";
                             case ScenarioType::kIncast: return "Incast";
                             case ScenarioType::kPfcStorm: return "Storm";
                             case ScenarioType::kPfcBackpressure: return "Backpressure";
                           }
                           return "Unknown";
                         });

}  // namespace
}  // namespace vedr::eval
