#include <gtest/gtest.h>

#include "eval/experiment.h"
#include "eval/metrics.h"
#include "eval/scenario.h"
#include "net/routing.h"

namespace vedr::eval {
namespace {

struct Fixture {
  net::Topology topo = net::make_fat_tree(4, net::NetConfig{});
  net::RoutingTable routing = net::RoutingTable::shortest_paths(topo);
  ScenarioParams params;

  Fixture() { params.scale = 1.0 / 64.0; }

  ScenarioSpec make(ScenarioType t, int id) { return make_scenario(t, id, topo, routing, params); }
};

TEST(Scenario, DeterministicForSameCaseId) {
  Fixture f;
  const auto a = f.make(ScenarioType::kFlowContention, 5);
  const auto b = f.make(ScenarioType::kFlowContention, 5);
  EXPECT_EQ(a.seed, b.seed);
  EXPECT_EQ(a.participants, b.participants);
  ASSERT_EQ(a.bg_flows.size(), b.bg_flows.size());
  for (std::size_t i = 0; i < a.bg_flows.size(); ++i) {
    EXPECT_EQ(a.bg_flows[i].key, b.bg_flows[i].key);
    EXPECT_EQ(a.bg_flows[i].bytes, b.bg_flows[i].bytes);
    EXPECT_EQ(a.bg_flows[i].start, b.bg_flows[i].start);
  }
}

TEST(Scenario, DistinctCasesDiffer) {
  Fixture f;
  const auto a = f.make(ScenarioType::kFlowContention, 0);
  const auto b = f.make(ScenarioType::kFlowContention, 1);
  EXPECT_NE(a.seed, b.seed);
}

TEST(Scenario, ContentionRespectsPaperDistributions) {
  Fixture f;
  for (int id = 0; id < 20; ++id) {
    const auto s = f.make(ScenarioType::kFlowContention, id);
    EXPECT_EQ(s.participants.size(), 8u);
    EXPECT_GE(s.bg_flows.size(), 1u);
    EXPECT_LE(s.bg_flows.size(), 6u);
    for (const auto& flow : s.bg_flows) {
      EXPECT_GE(flow.bytes, 65536);
      EXPECT_LE(flow.bytes,
                static_cast<std::int64_t>(1000LL * 1000 * 1000 * f.params.scale) + 1);
      EXPECT_GE(flow.start, 0);
      // Sources are never collective participants (intra-host contention is
      // out of scope).
      for (net::NodeId p : s.participants) EXPECT_NE(flow.key.src, p);
    }
  }
}

TEST(Scenario, IncastTargetsOneNodeSimultaneously) {
  Fixture f;
  for (int id = 0; id < 10; ++id) {
    const auto s = f.make(ScenarioType::kIncast, id);
    ASSERT_GE(s.bg_flows.size(), 3u);
    EXPECT_LE(s.bg_flows.size(), 8u);
    const net::NodeId victim = s.bg_flows[0].key.dst;
    const Tick start = s.bg_flows[0].start;
    for (const auto& flow : s.bg_flows) {
      EXPECT_EQ(flow.key.dst, victim);
      EXPECT_EQ(flow.start, start);
    }
  }
}

TEST(Scenario, StormOnSwitchToSwitchLink) {
  Fixture f;
  for (int id = 0; id < 10; ++id) {
    const auto s = f.make(ScenarioType::kPfcStorm, id);
    ASSERT_EQ(s.storms.size(), 1u);
    const auto& storm = s.storms[0];
    EXPECT_FALSE(f.topo.is_host(storm.port.node));
    const auto peer = f.topo.peer(storm.port.node, storm.port.port);
    EXPECT_FALSE(f.topo.is_host(peer.node)) << "storm must halt a switch, not a host NIC";
    EXPECT_GT(storm.duration, 0);
    EXPECT_EQ(s.expected_root, storm.port);
  }
}

TEST(Scenario, BackpressureVictimOffCollective) {
  Fixture f;
  for (int id = 0; id < 10; ++id) {
    const auto s = f.make(ScenarioType::kPfcBackpressure, id);
    ASSERT_GE(s.bg_flows.size(), 4u);
    const net::NodeId victim = s.bg_flows[0].key.dst;
    for (net::NodeId p : s.participants) EXPECT_NE(victim, p);
    // Expected root is the victim's access port on its edge switch.
    EXPECT_EQ(s.expected_root, f.topo.peer(victim, 0));
  }
}

TEST(Scenario, PaperCaseCounts) {
  EXPECT_EQ(paper_case_count(ScenarioType::kFlowContention), 60);
  EXPECT_EQ(paper_case_count(ScenarioType::kIncast), 60);
  EXPECT_EQ(paper_case_count(ScenarioType::kPfcStorm), 40);
  EXPECT_EQ(paper_case_count(ScenarioType::kPfcBackpressure), 60);
}

// --- scoring truth table ---------------------------------------------------

core::Diagnosis diag_detecting(std::vector<net::FlowKey> flows) {
  core::Diagnosis d;
  core::AnomalyFinding f;
  f.type = core::AnomalyType::kFlowContention;
  f.contending_flows = std::move(flows);
  d.findings.push_back(f);
  return d;
}

ScenarioSpec contention_spec(std::vector<net::FlowKey> injected) {
  ScenarioSpec s;
  s.type = ScenarioType::kFlowContention;
  for (const auto& k : injected) s.bg_flows.push_back({k, 1000, 0});
  return s;
}

TEST(Metrics, AllDetectedIsTp) {
  const auto k1 = anomaly::background_key(0, 1, 2);
  const auto k2 = anomaly::background_key(1, 3, 4);
  const auto o = score_case(contention_spec({k1, k2}), diag_detecting({k1, k2}));
  EXPECT_TRUE(o.tp);
  EXPECT_STREQ(o.label(), "TP");
}

TEST(Metrics, PartialDetectionIsFp) {
  const auto k1 = anomaly::background_key(0, 1, 2);
  const auto k2 = anomaly::background_key(1, 3, 4);
  const auto o = score_case(contention_spec({k1, k2}), diag_detecting({k1}));
  EXPECT_TRUE(o.fp);
}

TEST(Metrics, NoneDetectedIsFn) {
  const auto k1 = anomaly::background_key(0, 1, 2);
  const auto o = score_case(contention_spec({k1}), diag_detecting({}));
  EXPECT_TRUE(o.fn);
}

TEST(Metrics, VerifiedSubsetRestrictsRequirement) {
  const auto k1 = anomaly::background_key(0, 1, 2);
  const auto k2 = anomaly::background_key(1, 3, 4);
  const std::vector<net::FlowKey> verified{k1};  // k2 never actually collided
  const auto o = score_case(contention_spec({k1, k2}), diag_detecting({k1}), &verified);
  EXPECT_TRUE(o.tp);
}

TEST(Metrics, EmptyVerifiedSilenceIsTp) {
  const auto k1 = anomaly::background_key(0, 1, 2);
  const std::vector<net::FlowKey> verified{};
  const auto o = score_case(contention_spec({k1}), diag_detecting({}), &verified);
  EXPECT_TRUE(o.tp);
}

TEST(Metrics, PfcTracedToRootIsTp) {
  ScenarioSpec s;
  s.type = ScenarioType::kPfcStorm;
  s.expected_root = net::PortRef{20, 1};
  core::Diagnosis d;
  core::AnomalyFinding f;
  f.type = core::AnomalyType::kPfcStorm;
  f.root_port = net::PortRef{20, 1};
  d.findings.push_back(f);
  EXPECT_TRUE(score_case(s, d).tp);
}

TEST(Metrics, PfcChainContainingRootIsTp) {
  ScenarioSpec s;
  s.type = ScenarioType::kPfcBackpressure;
  s.expected_root = net::PortRef{20, 1};
  core::Diagnosis d;
  core::AnomalyFinding f;
  f.type = core::AnomalyType::kPfcBackpressure;
  f.root_port = net::PortRef{21, 0};
  f.pfc_chain = {net::PortRef{22, 3}, net::PortRef{20, 1}, net::PortRef{21, 0}};
  d.findings.push_back(f);
  EXPECT_TRUE(score_case(s, d).tp);
}

TEST(Metrics, PfcPresenceWithoutRootIsFp) {
  ScenarioSpec s;
  s.type = ScenarioType::kPfcStorm;
  s.expected_root = net::PortRef{20, 1};
  core::Diagnosis d;
  core::AnomalyFinding f;
  f.type = core::AnomalyType::kPfcBackpressure;
  f.root_port = net::PortRef{25, 0};
  d.findings.push_back(f);
  EXPECT_TRUE(score_case(s, d).fp);
}

TEST(Metrics, UnimpactedPfcIsVacuousTp) {
  ScenarioSpec s;
  s.type = ScenarioType::kPfcStorm;
  s.expected_root = net::PortRef{20, 1};
  const bool impacted = false;
  // Even with unrelated findings (or none), a storm that never met the
  // collective scores vacuously.
  EXPECT_TRUE(score_case(s, core::Diagnosis{}, nullptr, &impacted).tp);
  core::Diagnosis d;
  core::AnomalyFinding f;
  f.type = core::AnomalyType::kPfcBackpressure;
  f.root_port = net::PortRef{25, 0};
  d.findings.push_back(f);
  EXPECT_TRUE(score_case(s, d, nullptr, &impacted).tp);
}

TEST(Metrics, ImpactedPfcStillScoredStrictly) {
  ScenarioSpec s;
  s.type = ScenarioType::kPfcStorm;
  s.expected_root = net::PortRef{20, 1};
  const bool impacted = true;
  EXPECT_TRUE(score_case(s, core::Diagnosis{}, nullptr, &impacted).fn);
}

TEST(Metrics, PfcSilenceIsFn) {
  ScenarioSpec s;
  s.type = ScenarioType::kPfcStorm;
  s.expected_root = net::PortRef{20, 1};
  EXPECT_TRUE(score_case(s, core::Diagnosis{}).fn);
}

TEST(Metrics, ContentionFindingsDoNotSatisfyPfcScenarios) {
  ScenarioSpec s;
  s.type = ScenarioType::kPfcStorm;
  s.expected_root = net::PortRef{20, 1};
  const auto d = diag_detecting({anomaly::background_key(0, 1, 2)});
  EXPECT_TRUE(score_case(s, d).fn);
}

TEST(Metrics, PrecisionRecallMath) {
  PrecisionRecall pr;
  CaseOutcome tp, fp, fn;
  tp.tp = fp.fp = fn.fn = true;
  pr.add(tp);
  pr.add(tp);
  pr.add(fp);
  pr.add(fn);
  EXPECT_DOUBLE_EQ(pr.precision(), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(pr.recall(), 2.0 / 3.0);
  EXPECT_EQ(pr.total(), 4);
}

TEST(Metrics, EmptyPrecisionRecallIsZero) {
  PrecisionRecall pr;
  EXPECT_EQ(pr.precision(), 0.0);
  EXPECT_EQ(pr.recall(), 0.0);
}

}  // namespace
}  // namespace vedr::eval
