// Shard-report introspection (DESIGN.md §15): capturing the report is a tap,
// never a participant — the sharded digest is identical with the report on
// or off — and a captured report accounts for every simulated event.
#include "sim/shard_report.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "eval/experiment.h"
#include "net/routing.h"

namespace vedr::eval {
namespace {

ScenarioParams tiny_params() {
  ScenarioParams p;
  p.scale = 1.0 / 256.0;
  return p;
}

ScenarioSpec tiny_spec(ScenarioType type) {
  RunConfig cfg;
  const net::Topology topo = net::make_fat_tree(4, cfg.netcfg);
  const auto routing = net::RoutingTable::shortest_paths(topo);
  return make_scenario(type, /*case_id=*/0, topo, routing, tiny_params());
}

TEST(ShardReport, CaptureIsDigestNeutral) {
  const ScenarioSpec spec = tiny_spec(ScenarioType::kFlowContention);
  RunConfig off;
  off.shards = 2;
  RunConfig on = off;
  on.capture_shard_report = true;
  EXPECT_EQ(run_case_digest(spec, SystemKind::kVedrfolnir, off),
            run_case_digest(spec, SystemKind::kVedrfolnir, on))
      << "collecting the shard report perturbed the simulation";
}

TEST(ShardReport, CapturedReportAccountsForTheRun) {
  const ScenarioSpec spec = tiny_spec(ScenarioType::kIncast);
  RunConfig cfg;
  cfg.shards = 2;
  cfg.capture_shard_report = true;
  const CaseResult result = run_case(spec, SystemKind::kVedrfolnir, cfg);

  ASSERT_NE(result.shard_report, nullptr);
  const sim::ShardReport& rep = *result.shard_report;
  EXPECT_GT(rep.windows, 0u);
  EXPECT_TRUE(rep.timing) << "capture must switch on wall-clock timing";
  // Every simulated event belongs to exactly one domain.
  EXPECT_EQ(rep.total_events(), result.sim_events);
  ASSERT_FALSE(rep.workers.empty());
  ASSERT_FALSE(rep.domains.empty());
  for (const auto& w : rep.workers) {
    EXPECT_GE(w.barrier_wait_ratio(), 0.0);
    EXPECT_LE(w.barrier_wait_ratio(), 1.0);
  }
  for (const auto& d : rep.domains)
    EXPECT_EQ(d.events, d.events_per_window.sum())
        << "domain " << d.id << " window histogram disagrees with its total";

  const std::string table = rep.table();
  EXPECT_NE(table.find("shard report"), std::string::npos) << table;
  EXPECT_NE(table.find("worker"), std::string::npos) << table;
  EXPECT_NE(table.find("domain"), std::string::npos) << table;
}

TEST(ShardReport, AbsentUnlessRequested) {
  const ScenarioSpec spec = tiny_spec(ScenarioType::kFlowContention);
  RunConfig cfg;
  cfg.shards = 2;
  const CaseResult result = run_case(spec, SystemKind::kVedrfolnir, cfg);
  EXPECT_EQ(result.shard_report, nullptr);
}

}  // namespace
}  // namespace vedr::eval
