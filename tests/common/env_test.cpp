#include "common/env.h"

#include <gtest/gtest.h>

#include <cstdlib>

namespace vedr::common {
namespace {

TEST(ParseI64, AcceptsWellFormedIntegers) {
  EXPECT_EQ(parse_i64("0"), 0);
  EXPECT_EQ(parse_i64("42"), 42);
  EXPECT_EQ(parse_i64("-7"), -7);
  EXPECT_EQ(parse_i64("+13"), 13);
  EXPECT_EQ(parse_i64("9223372036854775807"), INT64_MAX);
  EXPECT_EQ(parse_i64("-9223372036854775808"), INT64_MIN);
}

TEST(ParseI64, RejectsGarbage) {
  // Everything atoi would silently turn into 0 or a prefix value.
  EXPECT_FALSE(parse_i64(""));
  EXPECT_FALSE(parse_i64("ten"));
  EXPECT_FALSE(parse_i64("12abc"));
  EXPECT_FALSE(parse_i64("abc12"));
  EXPECT_FALSE(parse_i64(" 12"));
  EXPECT_FALSE(parse_i64("12 "));
  EXPECT_FALSE(parse_i64("1.5"));
  EXPECT_FALSE(parse_i64("0x10"));
  EXPECT_FALSE(parse_i64("-"));
  EXPECT_FALSE(parse_i64("9223372036854775808"));   // INT64_MAX + 1
  EXPECT_FALSE(parse_i64("-9223372036854775809"));  // INT64_MIN - 1
}

TEST(ParseF64, AcceptsWellFormedNumbers) {
  EXPECT_EQ(parse_f64("0"), 0.0);
  EXPECT_EQ(parse_f64("0.0039"), 0.0039);
  EXPECT_EQ(parse_f64("-2.5"), -2.5);
  EXPECT_EQ(parse_f64("1e-3"), 1e-3);
  EXPECT_EQ(parse_f64("2.5E2"), 250.0);
  EXPECT_EQ(parse_f64(".5"), 0.5);
}

TEST(ParseF64, RejectsGarbage) {
  EXPECT_FALSE(parse_f64(""));
  EXPECT_FALSE(parse_f64("0.x5"));
  EXPECT_FALSE(parse_f64("1.5x"));
  EXPECT_FALSE(parse_f64(" 1.5"));
  EXPECT_FALSE(parse_f64("1.5 "));
  EXPECT_FALSE(parse_f64("one"));
  EXPECT_FALSE(parse_f64("--1"));
  EXPECT_FALSE(parse_f64("1e"));
  // inf/nan are never valid knob values.
  EXPECT_FALSE(parse_f64("inf"));
  EXPECT_FALSE(parse_f64("nan"));
  EXPECT_FALSE(parse_f64("1e999"));  // overflows to inf
}

TEST(EnvStr, UnsetAndEmptyAreNotConfigured) {
  ::unsetenv("VEDR_ENV_TEST_VAR");
  EXPECT_FALSE(env_str("VEDR_ENV_TEST_VAR"));
  ::setenv("VEDR_ENV_TEST_VAR", "", 1);
  EXPECT_FALSE(env_str("VEDR_ENV_TEST_VAR"));
  ::setenv("VEDR_ENV_TEST_VAR", "value", 1);
  EXPECT_EQ(env_str("VEDR_ENV_TEST_VAR"), "value");
  ::unsetenv("VEDR_ENV_TEST_VAR");
}

TEST(ParseOrDie, ReturnsParsedValues) {
  EXPECT_EQ(parse_i64_or_die("--case", "3"), 3);
  EXPECT_EQ(parse_f64_or_die("--scale", "0.25"), 0.25);
}

TEST(ParseOrDieDeathTest, ExitsOnGarbage) {
  EXPECT_EXIT(parse_i64_or_die("--case", "ten"), ::testing::ExitedWithCode(2), "not an integer");
  EXPECT_EXIT(parse_f64_or_die("VEDR_SCALE", "0.x5"), ::testing::ExitedWithCode(2),
              "not a number");
}

}  // namespace
}  // namespace vedr::common
