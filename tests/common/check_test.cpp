#include "common/check.h"

#include <gtest/gtest.h>

#include <string>

#include "common/digest.h"

namespace vedr::common {
namespace {

TEST(Check, PassingCheckIsSilent) {
  VEDR_CHECK(1 + 1 == 2);
  VEDR_CHECK(true, "never printed");
  VEDR_CHECK_EQ(4, 4);
  VEDR_CHECK_LE(3, 4, "ordered");
}

TEST(Check, FailingCheckThrowsUnderScopedHandler) {
  ScopedThrowOnCheckFailure guard;
  EXPECT_THROW(VEDR_CHECK(false), CheckFailure);
}

TEST(Check, FailureCarriesExpressionFileAndMessage) {
  ScopedThrowOnCheckFailure guard;
  try {
    const int live = 3;
    VEDR_CHECK(live == 0, "queue still has ", live, " events");
    FAIL() << "check did not fire";
  } catch (const CheckFailure& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("live == 0"), std::string::npos) << what;
    EXPECT_NE(what.find("check_test.cpp"), std::string::npos) << what;
    EXPECT_NE(what.find("queue still has 3 events"), std::string::npos) << what;
    EXPECT_GT(e.context().line, 0);
  }
}

TEST(Check, ComparisonMacrosPrintBothOperands) {
  ScopedThrowOnCheckFailure guard;
  const std::int64_t bytes = -42;
  const std::int64_t floor = 0;
  try {
    VEDR_CHECK_GE(bytes, floor, "accounting went negative");
    FAIL() << "check did not fire";
  } catch (const CheckFailure& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("bytes >= floor"), std::string::npos) << what;
    EXPECT_NE(what.find("bytes = -42"), std::string::npos) << what;
    EXPECT_NE(what.find("floor = 0"), std::string::npos) << what;
    EXPECT_NE(what.find("accounting went negative"), std::string::npos) << what;
  }
}

TEST(Check, ConditionEvaluatedExactlyOnce) {
  int evaluations = 0;
  auto probe = [&] {
    ++evaluations;
    return true;
  };
  VEDR_CHECK(probe(), "side effects must not double");
  EXPECT_EQ(evaluations, 1);
}

TEST(Check, ScopedHandlerRestoresPreviousOnExit) {
  // Nested scopes: the inner guard must hand control back to the outer one,
  // which still throws (rather than reverting all the way to abort).
  ScopedThrowOnCheckFailure outer;
  {
    ScopedThrowOnCheckFailure inner;
    EXPECT_THROW(VEDR_CHECK(false), CheckFailure);
  }
  EXPECT_THROW(VEDR_CHECK(false), CheckFailure);
}

TEST(Check, AssertMatchesBuildMode) {
  ScopedThrowOnCheckFailure guard;
#ifdef NDEBUG
  VEDR_ASSERT(false, "compiled out in release builds");
#else
  EXPECT_THROW(VEDR_ASSERT(false, "live in debug builds"), CheckFailure);
#endif
}

TEST(Auditor, AuditBodySkippedWhenDisabled) {
  ASSERT_FALSE(InvariantAuditor::enabled()) << "audits must be opt-in";
  bool ran = false;
  VEDR_AUDIT(ran = true);
  EXPECT_FALSE(ran);
}

TEST(Auditor, ScopeEnablesAndCountsAudits) {
  const std::uint64_t before = InvariantAuditor::audits_run();
  {
    InvariantAuditor::Scope scope;
    EXPECT_TRUE(InvariantAuditor::enabled());
    bool ran = false;
    VEDR_AUDIT(ran = true);
    EXPECT_TRUE(ran);
  }
  EXPECT_FALSE(InvariantAuditor::enabled());
  EXPECT_EQ(InvariantAuditor::audits_run(), before + 1);
}

TEST(Digest, DeterministicForSameInput) {
  Digest a;
  Digest b;
  a.mix(std::uint64_t{1}).mix(2.5).mix(std::string_view("flow"));
  b.mix(std::uint64_t{1}).mix(2.5).mix(std::string_view("flow"));
  EXPECT_EQ(a.value(), b.value());
  EXPECT_EQ(a.hex(), b.hex());
}

TEST(Digest, SensitiveToValueAndOrder) {
  Digest a;
  Digest b;
  Digest c;
  a.mix(std::uint64_t{1}).mix(std::uint64_t{2});
  b.mix(std::uint64_t{2}).mix(std::uint64_t{1});
  c.mix(std::uint64_t{1}).mix(std::uint64_t{3});
  EXPECT_NE(a.value(), b.value());
  EXPECT_NE(a.value(), c.value());
}

TEST(Digest, StringsDoNotCollideAcrossBoundaries) {
  // Length folding keeps ("ab","c") distinct from ("a","bc").
  Digest a;
  Digest b;
  a.mix(std::string_view("ab")).mix(std::string_view("c"));
  b.mix(std::string_view("a")).mix(std::string_view("bc"));
  EXPECT_NE(a.value(), b.value());
}

}  // namespace
}  // namespace vedr::common
