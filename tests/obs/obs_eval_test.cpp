// End-to-end observability checks against the real evaluation pipeline:
//  * golden schema check for the Chrome trace JSON produced by one scenario,
//  * StatsRegistry lifetime audit — per-case metric snapshots from
//    run_scenario_suite must match an isolated run of the same case (each
//    case owns a fresh Network/registry, so nothing bleeds across the suite).
#include <map>
#include <string>

#include <gtest/gtest.h>

#include "eval/experiment.h"
#include "net/routing.h"
#include "net/topology.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace vedr {
namespace {

std::size_t count_occurrences(const std::string& haystack, const std::string& needle) {
  std::size_t n = 0;
  for (std::size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size()))
    ++n;
  return n;
}

class ObsEvalTest : public ::testing::Test {
 protected:
  void TearDown() override {
    obs::trace_disable();
    obs::metrics_disable();
    obs::trace_reset();
  }

  static eval::ScenarioSpec make_spec(eval::ScenarioType type, int case_id) {
    eval::RunConfig cfg;
    const net::Topology topo = net::make_fat_tree(4, cfg.netcfg);
    const net::RoutingTable routing = net::RoutingTable::shortest_paths(topo);
    eval::ScenarioParams params;
    params.scale = 0.0039;  // smoke scale: milliseconds per case
    return eval::make_scenario(type, case_id, topo, routing, params);
  }
};

TEST_F(ObsEvalTest, BackpressureCaseProducesWellFormedTraceJson) {
  obs::trace_enable();
  obs::metrics_enable();
  const auto spec = make_spec(eval::ScenarioType::kPfcBackpressure, 0);
  eval::run_case(spec, eval::SystemKind::kVedrfolnir);

  const obs::TraceStats stats = obs::trace_stats();
  ASSERT_GT(stats.written, 0u);
  ASSERT_EQ(stats.dropped, 0u) << "default ring must hold a smoke-scale case";

  const std::string json = obs::chrome_trace_json();

  // Envelope: traceEvents array, ns display unit, drop accounting, and the
  // named wall/sim process tracks.
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ns\""), std::string::npos);
  EXPECT_NE(json.find("\"otherData\""), std::string::npos);
  EXPECT_NE(json.find("\"dropped\":0"), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("{\"name\":\"wall\"}"), std::string::npos);
  EXPECT_NE(json.find("{\"name\":\"sim\"}"), std::string::npos);

  // Span taxonomy: every layer of the run shows up at least once.
  EXPECT_NE(json.find("\"name\":\"run_case\""), std::string::npos);   // eval
  EXPECT_NE(json.find("\"name\":\"step\""), std::string::npos);       // collective
  EXPECT_NE(json.find("\"name\":\"flow\""), std::string::npos);       // net
  EXPECT_NE(json.find("\"name\":\"diagnose\""), std::string::npos);   // core
  EXPECT_NE(json.find("\"cat\":\"diag\""), std::string::npos);

  // Scoped spans are balanced: the exporter keeps 'B'/'E' on the wall track
  // only, so the global counts must agree when nothing was dropped.
  EXPECT_EQ(count_occurrences(json, "\"ph\":\"B\""), count_occurrences(json, "\"ph\":\"E\""));
  // Async spans open; flows cut short by the horizon may legitimately never
  // close, so only the begin side is required.
  EXPECT_GT(count_occurrences(json, "\"ph\":\"b\""), 0u);
}

TEST_F(ObsEvalTest, BackpressureCaseRecordsPfcTimeline) {
  obs::trace_enable();
  const auto spec = make_spec(eval::ScenarioType::kPfcBackpressure, 0);
  eval::run_case(spec, eval::SystemKind::kVedrfolnir);
  const std::string json = obs::chrome_trace_json();
  EXPECT_NE(json.find("\"name\":\"pfc_xoff\""), std::string::npos)
      << "backpressure scenario should pause at least one port";
  EXPECT_NE(json.find("\"name\":\"pfc_pause\""), std::string::npos);
}

TEST_F(ObsEvalTest, SuiteSnapshotsMatchIsolatedRuns) {
  obs::metrics_enable();
  eval::RunConfig cfg;
  cfg.capture_metrics = true;
  eval::ScenarioParams params;
  params.scale = 0.0039;
  const auto results = eval::run_scenario_suite(eval::ScenarioType::kPfcBackpressure, 3,
                                                eval::SystemKind::kVedrfolnir, cfg, params,
                                                /*threads=*/1);
  ASSERT_EQ(results.size(), 3u);

  for (const auto& r : results) {
    ASSERT_NE(r.metrics, nullptr);
    EXPECT_FALSE(r.metrics->empty());
  }

  // Every case must see only its own registry. If state bled across the
  // suite, case 2's counters would accumulate cases 0 and 1 on top.
  for (int case_id = 0; case_id < 3; ++case_id) {
    const auto spec = make_spec(eval::ScenarioType::kPfcBackpressure, case_id);
    const eval::CaseResult isolated = eval::run_case(spec, eval::SystemKind::kVedrfolnir, cfg);
    ASSERT_NE(isolated.metrics, nullptr);
    const obs::MetricsSnapshot& suite_snap = *results[case_id].metrics;
    const obs::MetricsSnapshot& solo_snap = *isolated.metrics;

    // Counters are sim-derived and therefore bit-deterministic.
    EXPECT_EQ(suite_snap.counters, solo_snap.counters) << "case " << case_id;

    // Histogram sample counts are deterministic even for wall-latency series
    // (the number of observations is fixed by the sim; only wall durations
    // vary). Sim-valued histograms must match in full.
    ASSERT_EQ(suite_snap.hists.size(), solo_snap.hists.size());
    for (const auto& [name, hist] : suite_snap.hists) {
      auto it = solo_snap.hists.find(name);
      ASSERT_NE(it, solo_snap.hists.end()) << name;
      EXPECT_EQ(hist.count(), it->second.count()) << name << " case " << case_id;
      if (name == "monitor.rtt_ns" || name == "switch.queue_depth_bytes") {
        EXPECT_EQ(hist.sum(), it->second.sum()) << name << " case " << case_id;
        for (int b = 0; b < obs::Histogram::kNumBuckets; ++b)
          EXPECT_EQ(hist.bucket(b), it->second.bucket(b)) << name << " bucket " << b;
      }
    }

    ASSERT_EQ(suite_snap.summaries.size(), solo_snap.summaries.size());
    for (const auto& [name, s] : suite_snap.summaries)
      EXPECT_EQ(s.count(), solo_snap.summaries.at(name).count()) << name;
  }
}

TEST_F(ObsEvalTest, MetricsCaptureIsOptInPerRun) {
  const auto spec = make_spec(eval::ScenarioType::kIncast, 0);
  const eval::CaseResult r = eval::run_case(spec, eval::SystemKind::kVedrfolnir);
  EXPECT_EQ(r.metrics, nullptr) << "capture_metrics=false must not allocate a snapshot";
}

}  // namespace
}  // namespace vedr
