// Flight recorder coverage (DESIGN.md §15): bounded ring semantics, the JSON
// dump schema, the CHECK-failure observer hook, and the rate-limited-log
// suppression summary event.
#include "obs/flight.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "common/check.h"
#include "obs/log.h"

namespace vedr::obs {
namespace {

TEST(Flight, RecordsAndRendersJson) {
  flight_reset();
  flight_record("test", "hello %d", 42);
  flight_record("queue", "drop session=%d", 7);
  EXPECT_EQ(flight_recorded(), 2u);

  const std::string json = flight_json();
  EXPECT_NE(json.find("\"recorded\":2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"capacity\":512"), std::string::npos) << json;
  EXPECT_NE(json.find("\"dropped\":0"), std::string::npos) << json;
  EXPECT_NE(json.find("\"cat\":\"test\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"msg\":\"hello 42\""), std::string::npos) << json;
  EXPECT_NE(json.find("drop session=7"), std::string::npos) << json;
  // Oldest first: the first event's seq precedes the second's in the dump.
  EXPECT_LT(json.find("hello 42"), json.find("drop session=7"));
  flight_reset();
  EXPECT_EQ(flight_recorded(), 0u);
}

TEST(Flight, RingIsBoundedAndKeepsTheNewest) {
  flight_reset();
  const std::size_t cap = flight_capacity();
  for (std::size_t i = 0; i < cap + 100; ++i)
    flight_record("wrap", "event %zu", i);
  EXPECT_EQ(flight_recorded(), cap + 100);

  const std::string json = flight_json();
  EXPECT_NE(json.find("\"dropped\":100"), std::string::npos) << "oldest 100 overwritten";
  // Event 99 was overwritten; event 100 is the oldest survivor.
  EXPECT_EQ(json.find("\"msg\":\"event 99\""), std::string::npos);
  EXPECT_NE(json.find("\"msg\":\"event 100\""), std::string::npos);
  char newest[64];
  std::snprintf(newest, sizeof newest, "\"msg\":\"event %zu\"", cap + 99);
  EXPECT_NE(json.find(newest), std::string::npos);
  flight_reset();
}

TEST(Flight, TruncatesLongMessagesInsteadOfSplitting) {
  flight_reset();
  const std::string big(500, 'x');
  flight_record("big", "%s", big.c_str());
  EXPECT_EQ(flight_recorded(), 1u);
  const std::string json = flight_json();
  EXPECT_NE(json.find("xxx"), std::string::npos);
  EXPECT_LT(json.size(), 600u) << "a 500-char payload must truncate to the slot width";
  flight_reset();
}

TEST(Flight, CheckFailureRecordsContextViaTheObserverHook) {
  flight_install_check_hooks();
  flight_reset();
  common::ScopedThrowOnCheckFailure throw_scope;
  bool caught = false;
  try {
    VEDR_CHECK(1 == 2, "flight context message");
  } catch (const common::CheckFailure&) {
    caught = true;
  }
  ASSERT_TRUE(caught);
  // The observer ran before the (throwing) handler and captured site + text.
  const std::string json = flight_json();
  EXPECT_NE(json.find("\"cat\":\"check\""), std::string::npos) << json;
  EXPECT_NE(json.find("flight_test.cpp"), std::string::npos) << json;
  EXPECT_NE(json.find("flight context message"), std::string::npos) << json;
  flight_reset();
}

TEST(Flight, LogSuppressionEpochRecordsOneSummaryEvent) {
  flight_reset();
  set_log_threshold(LogLevel::kError);  // keep the flood off stderr

  LogSite site;  // a private call site, fully under test control
  // Fill the rate window and then some: kMaxPerSecond lines pass, 5 suppress
  // (the flood runs in well under the 1s window, so no mid-flood reset).
  for (std::uint32_t i = 0; i < kMaxPerSecond + 5; ++i)
    log_write(site, LogLevel::kError, "test", __FILE__, __LINE__, "flood %u", i);
  EXPECT_EQ(flight_recorded(), 0u) << "suppressing alone must not spam the ring";

  // Backdate the window start so the next line sees an expired window: it
  // emits, carries the suppression summary, and records exactly one "log"
  // flight event for the whole epoch.
  site.window_start_ns.store(1);
  log_write(site, LogLevel::kError, "test", __FILE__, __LINE__, "after the storm");
  EXPECT_EQ(flight_recorded(), 1u);
  const std::string json = flight_json();
  EXPECT_NE(json.find("\"cat\":\"log\""), std::string::npos) << json;
  EXPECT_NE(json.find("suppressed 5 lines"), std::string::npos) << json;
  EXPECT_NE(json.find("comp=test"), std::string::npos) << json;

  set_log_threshold(LogLevel::kInfo);
  flight_reset();
}

}  // namespace
}  // namespace vedr::obs
