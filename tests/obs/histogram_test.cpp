#include "obs/histogram.h"

#include <cstdint>

#include <gtest/gtest.h>

namespace vedr::obs {
namespace {

TEST(Histogram, UnderflowBucketTakesZeroAndNegatives) {
  EXPECT_EQ(Histogram::bucket_of(0), 0);
  EXPECT_EQ(Histogram::bucket_of(-1), 0);
  EXPECT_EQ(Histogram::bucket_of(INT64_MIN), 0);

  Histogram h;
  h.add(0);
  h.add(-42);
  EXPECT_EQ(h.bucket(0), 2u);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.sum(), -42);
}

TEST(Histogram, BucketBoundariesAtPowersOfTwo) {
  // Bucket i (1 <= i <= 62) holds [2^(i-1), 2^i): the boundary value 2^i
  // belongs to the NEXT bucket, 2^i - 1 to this one.
  EXPECT_EQ(Histogram::bucket_of(1), 1);
  EXPECT_EQ(Histogram::bucket_of(2), 2);
  EXPECT_EQ(Histogram::bucket_of(3), 2);
  EXPECT_EQ(Histogram::bucket_of(4), 3);
  for (int i = 1; i <= 61; ++i) {
    const std::int64_t lo = std::int64_t{1} << (i - 1);
    const std::int64_t hi = (std::int64_t{1} << i) - 1;
    EXPECT_EQ(Histogram::bucket_of(lo), i) << "lower edge of bucket " << i;
    EXPECT_EQ(Histogram::bucket_of(hi), i) << "upper edge of bucket " << i;
    EXPECT_EQ(Histogram::bucket_of(hi + 1), i + 1) << "first value past bucket " << i;
  }
}

TEST(Histogram, OverflowBucketCatchesHugeValues) {
  // 2^62 is the first value the finite buckets cannot represent.
  EXPECT_EQ(Histogram::bucket_of((std::int64_t{1} << 62) - 1), 62);
  EXPECT_EQ(Histogram::bucket_of(std::int64_t{1} << 62), Histogram::kOverflowBucket);
  EXPECT_EQ(Histogram::bucket_of(INT64_MAX), Histogram::kOverflowBucket);
  EXPECT_EQ(Histogram::upper_edge(Histogram::kOverflowBucket), INT64_MAX);
}

TEST(Histogram, UpperEdgeIsInclusiveBucketMaximum) {
  for (int i = 1; i < Histogram::kOverflowBucket; ++i) {
    const std::int64_t edge = Histogram::upper_edge(i);
    EXPECT_EQ(Histogram::bucket_of(edge), i);
    EXPECT_EQ(edge, (std::int64_t{1} << i) - 1);
  }
}

TEST(Histogram, AddAccumulatesCountAndSum) {
  Histogram h;
  h.add(5);
  h.add(100);
  h.add(1000);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.sum(), 1105);
  EXPECT_EQ(h.bucket(Histogram::bucket_of(5)), 1u);
  EXPECT_EQ(h.bucket(Histogram::bucket_of(100)), 1u);
  EXPECT_EQ(h.bucket(Histogram::bucket_of(1000)), 1u);
}

TEST(Histogram, MergeAddsBucketwise) {
  Histogram a;
  Histogram b;
  a.add(1);
  a.add(7);
  b.add(7);
  b.add(1 << 20);
  b.add(-3);
  a.merge(b);
  EXPECT_EQ(a.count(), 5u);
  EXPECT_EQ(a.sum(), 1 + 7 + 7 + (1 << 20) - 3);
  EXPECT_EQ(a.bucket(0), 1u);                              // the -3
  EXPECT_EQ(a.bucket(Histogram::bucket_of(7)), 2u);        // one from each side
  EXPECT_EQ(a.bucket(Histogram::bucket_of(1 << 20)), 1u);
}

TEST(Histogram, ResetClearsEverything) {
  Histogram h;
  h.add(9);
  h.add(-1);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0);
  for (int i = 0; i < Histogram::kNumBuckets; ++i) EXPECT_EQ(h.bucket(i), 0u);
  EXPECT_EQ(h.value_at_quantile(0.5), 0);
}

TEST(Histogram, QuantilesReturnBucketUpperBounds) {
  Histogram h;
  // 90 small samples in bucket_of(10)=4 (values 8..15), 10 large in
  // bucket_of(5000)=13 (4096..8191).
  for (int i = 0; i < 90; ++i) h.add(10);
  for (int i = 0; i < 10; ++i) h.add(5000);
  EXPECT_EQ(h.value_at_quantile(0.5), Histogram::upper_edge(4));
  EXPECT_EQ(h.value_at_quantile(0.9), Histogram::upper_edge(4));
  EXPECT_EQ(h.value_at_quantile(0.95), Histogram::upper_edge(13));
  EXPECT_EQ(h.value_at_quantile(1.0), Histogram::upper_edge(13));
  // Out-of-range q values clamp rather than misbehave. q<=0 clamps to 0,
  // whose target of zero samples is met by the (empty) underflow bucket.
  EXPECT_EQ(h.value_at_quantile(-1.0), Histogram::upper_edge(0));
  EXPECT_EQ(h.value_at_quantile(2.0), Histogram::upper_edge(13));
}

}  // namespace
}  // namespace vedr::obs
