#include "obs/log.h"

#include <string>

#include <gtest/gtest.h>

namespace vedr::obs {
namespace {

std::size_t count_occurrences(const std::string& haystack, const std::string& needle) {
  std::size_t n = 0;
  for (std::size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size()))
    ++n;
  return n;
}

class LogTest : public ::testing::Test {
 protected:
  void TearDown() override { set_log_threshold(LogLevel::kInfo); }
};

TEST_F(LogTest, LevelNamesRoundTrip) {
  EXPECT_STREQ(to_string(LogLevel::kDebug), "debug");
  EXPECT_STREQ(to_string(LogLevel::kInfo), "info");
  EXPECT_STREQ(to_string(LogLevel::kWarn), "warn");
  EXPECT_STREQ(to_string(LogLevel::kError), "error");
  EXPECT_STREQ(to_string(LogLevel::kOff), "off");
}

TEST_F(LogTest, ThresholdSetterOverridesEnvironment) {
  set_log_threshold(LogLevel::kError);
  EXPECT_EQ(log_threshold(), LogLevel::kError);
  set_log_threshold(LogLevel::kDebug);
  EXPECT_EQ(log_threshold(), LogLevel::kDebug);
}

TEST_F(LogTest, EmitsLogfmtLineWithSourceLocation) {
  set_log_threshold(LogLevel::kInfo);
  ::testing::internal::CaptureStderr();
  VEDR_LOG_WARN("unit", "case %d exceeded %s", 7, "budget");
  const std::string err = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find("level=warn comp=unit src=log_test.cpp:"), std::string::npos) << err;
  EXPECT_NE(err.find("msg=\"case 7 exceeded budget\""), std::string::npos) << err;
}

TEST_F(LogTest, LinesBelowThresholdAreDropped) {
  set_log_threshold(LogLevel::kError);
  ::testing::internal::CaptureStderr();
  VEDR_LOG_DEBUG("unit", "invisible");
  VEDR_LOG_INFO("unit", "invisible");
  VEDR_LOG_WARN("unit", "invisible");
  VEDR_LOG_ERROR("unit", "visible");
  const std::string err = ::testing::internal::GetCapturedStderr();
  EXPECT_EQ(count_occurrences(err, "invisible"), 0u) << err;
  EXPECT_EQ(count_occurrences(err, "visible"), 1u) << err;
}

TEST_F(LogTest, OffSilencesEvenErrors) {
  set_log_threshold(LogLevel::kOff);
  ::testing::internal::CaptureStderr();
  VEDR_LOG_ERROR("unit", "nothing");
  EXPECT_EQ(::testing::internal::GetCapturedStderr(), "");
}

TEST_F(LogTest, QuotesInMessagesAreSoftened) {
  set_log_threshold(LogLevel::kInfo);
  ::testing::internal::CaptureStderr();
  VEDR_LOG_INFO("unit", "flow \"a->b\" stalled");
  const std::string err = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find("msg=\"flow 'a->b' stalled\""), std::string::npos) << err;
}

TEST_F(LogTest, PerSiteRateLimitCapsLinesPerSecond) {
  set_log_threshold(LogLevel::kInfo);
  ::testing::internal::CaptureStderr();
  // One call site, many calls inside a single one-second window: the limit
  // admits kMaxPerSecond lines and counts the rest as suppressed.
  for (std::uint32_t i = 0; i < kMaxPerSecond * 3; ++i) VEDR_LOG_INFO("unit", "spam");
  const std::string err = ::testing::internal::GetCapturedStderr();
  EXPECT_EQ(count_occurrences(err, "msg=\"spam\""), static_cast<std::size_t>(kMaxPerSecond))
      << err;
}

TEST_F(LogTest, DistinctCallSitesRateLimitIndependently) {
  set_log_threshold(LogLevel::kInfo);
  ::testing::internal::CaptureStderr();
  for (std::uint32_t i = 0; i < kMaxPerSecond * 2; ++i) VEDR_LOG_INFO("unit", "site_a");
  for (std::uint32_t i = 0; i < kMaxPerSecond * 2; ++i) VEDR_LOG_INFO("unit", "site_b");
  const std::string err = ::testing::internal::GetCapturedStderr();
  EXPECT_EQ(count_occurrences(err, "site_a"), static_cast<std::size_t>(kMaxPerSecond));
  EXPECT_EQ(count_occurrences(err, "site_b"), static_cast<std::size_t>(kMaxPerSecond));
}

}  // namespace
}  // namespace vedr::obs
