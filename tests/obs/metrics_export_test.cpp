#include "obs/metrics.h"

#include <cstdint>
#include <string>

#include <gtest/gtest.h>

#include "sim/stats.h"

namespace vedr::obs {
namespace {

std::size_t count_occurrences(const std::string& haystack, const std::string& needle) {
  std::size_t n = 0;
  for (std::size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size()))
    ++n;
  return n;
}

// StatsRegistry is pinned in place (it owns a mutex), so the fixture fills a
// caller-owned instance instead of returning one.
void fill_registry(sim::StatsRegistry& stats) {
  stats.add_counter("overhead.poll_bytes", 1200);
  stats.add_counter("replay.frames", 56);
  stats.add_sample("queue.depth", 4.0);
  stats.add_sample("queue.depth", 8.0);
  stats.observe("diag.latency_ns", 900);     // bucket 10 (512..1023)
  stats.observe("diag.latency_ns", 1000);    // bucket 10
  stats.observe("diag.latency_ns", 70000);   // bucket 17 (65536..131071)
}

MetricsSnapshot filled_snapshot() {
  sim::StatsRegistry stats;
  fill_registry(stats);
  return snapshot(stats);
}

TEST(MetricsSnapshot, CapturesAllThreeKinds) {
  const MetricsSnapshot snap = filled_snapshot();
  EXPECT_FALSE(snap.empty());
  EXPECT_EQ(snap.counters.at("overhead.poll_bytes"), 1200);
  EXPECT_EQ(snap.counters.at("replay.frames"), 56);
  EXPECT_EQ(snap.summaries.at("queue.depth").count(), 2u);
  EXPECT_DOUBLE_EQ(snap.summaries.at("queue.depth").mean(), 6.0);
  EXPECT_EQ(snap.hists.at("diag.latency_ns").count(), 3u);
}

TEST(MetricsSnapshot, IsIndependentOfTheRegistryAfterwards) {
  sim::StatsRegistry stats;
  fill_registry(stats);
  const MetricsSnapshot snap = snapshot(stats);
  stats.add_counter("replay.frames", 100);
  stats.observe("diag.latency_ns", 5);
  EXPECT_EQ(snap.counters.at("replay.frames"), 56);
  EXPECT_EQ(snap.hists.at("diag.latency_ns").count(), 3u);
}

TEST(PrometheusExport, SanitizesNamesAndTypesSeries) {
  const std::string text = to_prometheus(filled_snapshot());
  EXPECT_NE(text.find("# TYPE vedr_overhead_poll_bytes counter\n"), std::string::npos) << text;
  EXPECT_NE(text.find("vedr_overhead_poll_bytes 1200\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE vedr_queue_depth gauge\n"), std::string::npos);
  EXPECT_NE(text.find("vedr_queue_depth_count 2\n"), std::string::npos);
  EXPECT_NE(text.find("vedr_queue_depth_mean 6\n"), std::string::npos);
  EXPECT_NE(text.find("vedr_queue_depth_min 4\n"), std::string::npos);
  EXPECT_NE(text.find("vedr_queue_depth_max 8\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE vedr_diag_latency_ns histogram\n"), std::string::npos);
  EXPECT_EQ(text.find('.'), std::string::npos) << "dotted names must not leak: " << text;
}

TEST(PrometheusExport, HistogramBucketsAreCumulativeAndEndAtInf) {
  const std::string text = to_prometheus(filled_snapshot());
  // Two samples land in bucket 10 (le 1023) and one more in bucket 17
  // (le 131071); empty buckets between them are elided but the counts
  // stay cumulative. +Inf always equals the total count.
  EXPECT_NE(text.find("vedr_diag_latency_ns_bucket{le=\"1023\"} 2\n"), std::string::npos)
      << text;
  EXPECT_NE(text.find("vedr_diag_latency_ns_bucket{le=\"131071\"} 3\n"), std::string::npos);
  EXPECT_NE(text.find("vedr_diag_latency_ns_bucket{le=\"+Inf\"} 3\n"), std::string::npos);
  EXPECT_NE(text.find("vedr_diag_latency_ns_sum 71900\n"), std::string::npos);
  EXPECT_NE(text.find("vedr_diag_latency_ns_count 3\n"), std::string::npos);
  EXPECT_EQ(count_occurrences(text, "vedr_diag_latency_ns_bucket"), 3u);
}

TEST(PrometheusExport, LabelsAttachToEverySeries) {
  const std::string text =
      to_prometheus(filled_snapshot(), {{"scenario", "incast"}, {"case_id", "0"}});
  EXPECT_NE(text.find("vedr_replay_frames{case_id=\"0\",scenario=\"incast\"} 56\n"),
            std::string::npos)
      << text;
  // Histogram bucket lines append le after the shared labels.
  EXPECT_NE(
      text.find("vedr_diag_latency_ns_bucket{case_id=\"0\",scenario=\"incast\",le=\"+Inf\"} 3\n"),
      std::string::npos)
      << text;
  // No unlabeled sample lines sneak through (TYPE comments carry no labels).
  EXPECT_EQ(count_occurrences(text, "\nvedr_replay_frames 56"), 0u);
}

TEST(PrometheusExport, EmptySnapshotYieldsEmptyText) {
  EXPECT_EQ(to_prometheus(MetricsSnapshot{}), "");
}

TEST(JsonExport, RendersCountersSummariesAndHistograms) {
  const std::string json = to_json(filled_snapshot());
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"overhead.poll_bytes\":1200"), std::string::npos) << json;
  EXPECT_NE(json.find("\"summaries\""), std::string::npos);
  EXPECT_NE(json.find("\"queue.depth\""), std::string::npos);
  EXPECT_NE(json.find("\"hists\""), std::string::npos);
  // Histogram buckets render as [upper_edge, count] pairs.
  EXPECT_NE(json.find("\"buckets\":[[1023,2],[131071,1]]"), std::string::npos) << json;
  EXPECT_NE(json.find("\"p50\":1023"), std::string::npos);
}

TEST(JsonExport, EmptySnapshotIsStillAnObject) {
  const std::string json = to_json(MetricsSnapshot{});
  EXPECT_EQ(json, "{\"counters\":{},\"summaries\":{},\"hists\":{},\"gauges\":[]}");
}

TEST(PrometheusExport, LabelValuesAreEscaped) {
  MetricsSnapshot snap;
  snap.counters["serve.records"] = 7;
  const std::string text =
      to_prometheus(snap, {{"tenant", "a\"b\\c\nd"}});
  EXPECT_NE(text.find("vedr_serve_records{tenant=\"a\\\"b\\\\c\\nd\"} 7\n"), std::string::npos)
      << text;
  // Exactly two physical lines (TYPE + sample): the raw newline in the label
  // value must not split the sample line.
  EXPECT_EQ(count_occurrences(text, "\n"), 2u) << text;
}

TEST(PrometheusExport, EscapeLabelValueCoversTheExpositionTriple) {
  EXPECT_EQ(escape_label_value("plain"), "plain");
  EXPECT_EQ(escape_label_value("q\"q"), "q\\\"q");
  EXPECT_EQ(escape_label_value("b\\b"), "b\\\\b");
  EXPECT_EQ(escape_label_value("n\nn"), "n\\nn");
  EXPECT_EQ(escape_label_value("\\\"\n"), "\\\\\\\"\\n");
}

TEST(PrometheusExport, GaugeSeriesCarryPerSeriesLabels) {
  MetricsSnapshot snap;
  snap.gauges.push_back({"serve.window.p99_ns", {{"window", "10s"}}, 1023.0});
  snap.gauges.push_back({"serve.window.p99_ns", {{"window", "60s"}}, 2047.0});
  snap.gauges.push_back({"serve.uptime_seconds", {}, 12.5});
  const std::string text = to_prometheus(snap, {{"job", "serve"}});
  // One TYPE line per metric name even with several label variants.
  EXPECT_EQ(count_occurrences(text, "# TYPE vedr_serve_window_p99_ns gauge"), 1u) << text;
  EXPECT_NE(text.find("vedr_serve_window_p99_ns{job=\"serve\",window=\"10s\"} 1023\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("vedr_serve_window_p99_ns{job=\"serve\",window=\"60s\"} 2047\n"),
            std::string::npos);
  EXPECT_NE(text.find("vedr_serve_uptime_seconds{job=\"serve\"} 12.5\n"), std::string::npos);
}

TEST(JsonExport, GaugesRenderAsSeriesArray) {
  MetricsSnapshot snap;
  snap.gauges.push_back({"serve.window.rate", {{"tenant", "t0"}}, 42.0});
  const std::string json = to_json(snap);
  EXPECT_NE(json.find("\"gauges\":[{\"name\":\"serve.window.rate\","
                      "\"labels\":{\"tenant\":\"t0\"},\"value\":42}]"),
            std::string::npos)
      << json;
}

}  // namespace
}  // namespace vedr::obs
