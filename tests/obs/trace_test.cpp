#include "obs/trace.h"

#include <string>

#include <gtest/gtest.h>

namespace vedr::obs {
namespace {

std::size_t count_occurrences(const std::string& haystack, const std::string& needle) {
  std::size_t n = 0;
  for (std::size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size()))
    ++n;
  return n;
}

// Every test leaves the global recorder off and empty: the fixture mirrors
// how tools use the API (enable → record → export → disable).
class TraceTest : public ::testing::Test {
 protected:
  void TearDown() override {
    trace_disable();
    metrics_disable();
    trace_reset();
  }
};

TEST_F(TraceTest, DisabledRecordingIsIgnored) {
  ASSERT_FALSE(trace_enabled());
  instant("t", "nothing", 100, 1);
  span_begin("t", "nothing", 100);
  span_end("t", "nothing", 100);
  const TraceStats s = trace_stats();
  EXPECT_EQ(s.written, 0u);
  EXPECT_EQ(s.retained, 0u);
  EXPECT_EQ(s.dropped, 0u);
}

TEST_F(TraceTest, EnableDisableTogglesTheFlagsIndependently) {
  EXPECT_FALSE(trace_enabled());
  EXPECT_FALSE(metrics_enabled());
  trace_enable();
  EXPECT_TRUE(trace_enabled());
  EXPECT_FALSE(metrics_enabled()) << "--obs-trace must not imply metric sampling";
  metrics_enable();
  EXPECT_TRUE(metrics_enabled());
  trace_disable();
  EXPECT_FALSE(trace_enabled());
  EXPECT_TRUE(metrics_enabled()) << "disabling tracing must not disable sampling";
}

TEST_F(TraceTest, RingWrapOverwritesOldestAndCountsDrops) {
  trace_enable(8);  // 8 slots on this thread's ring
  for (int i = 0; i < 20; ++i)
    instant("t", "tick", i, static_cast<std::uint64_t>(i));
  const TraceStats s = trace_stats();
  EXPECT_EQ(s.written, 20u);
  EXPECT_EQ(s.retained, 8u);
  EXPECT_EQ(s.dropped, 12u);
  EXPECT_GE(s.threads, 1u);

  // The survivors are the NEWEST 8 events: args 12..19.
  const std::string json = chrome_trace_json();
  EXPECT_EQ(count_occurrences(json, "\"name\":\"tick\""), 16u)  // wall + sim track
      << json;
  EXPECT_EQ(count_occurrences(json, "{\"v\":11}"), 0u);
  EXPECT_EQ(count_occurrences(json, "{\"v\":12}"), 2u);
  EXPECT_EQ(count_occurrences(json, "{\"v\":19}"), 2u);
}

TEST_F(TraceTest, CapacityRoundsUpToPowerOfTwo) {
  trace_enable(5);  // rounds to 8
  for (int i = 0; i < 9; ++i) instant("t", "tick", kNoSimTime);
  const TraceStats s = trace_stats();
  EXPECT_EQ(s.written, 9u);
  EXPECT_EQ(s.retained, 8u);
  EXPECT_EQ(s.dropped, 1u);
}

TEST_F(TraceTest, TraceResetClearsEventsAndDropCounts) {
  trace_enable(8);
  for (int i = 0; i < 20; ++i) instant("t", "tick", kNoSimTime);
  trace_reset();
  const TraceStats s = trace_stats();
  EXPECT_EQ(s.written, 0u);
  EXPECT_EQ(s.retained, 0u);
  EXPECT_EQ(s.dropped, 0u);
  instant("t", "after", kNoSimTime);
  EXPECT_EQ(trace_stats().retained, 1u);
}

TEST_F(TraceTest, ScopedSpanEmitsBalancedBeginEnd) {
  trace_enable(64);
  {
    VEDR_SPAN("cat", "outer");
    { VEDR_SPAN("cat", "inner"); }
  }
  const std::string json = chrome_trace_json();
  EXPECT_EQ(count_occurrences(json, "\"ph\":\"B\""), 2u) << json;
  EXPECT_EQ(count_occurrences(json, "\"ph\":\"E\""), 2u) << json;
}

TEST_F(TraceTest, SpanEnabledMidScopeDoesNotEmitDanglingEnd) {
  ScopedSpan* span = nullptr;
  {
    ScopedSpan local("cat", "late");  // tracing off: inactive shell
    span = &local;
    trace_enable(64);
  }  // destructor runs with tracing on, but the span was born inactive
  (void)span;
  const TraceStats s = trace_stats();
  EXPECT_EQ(s.written, 0u);
}

TEST_F(TraceTest, AsyncSpansCarryIdsAndInstantsMarkThreadScope) {
  trace_enable(64);
  async_begin("net", "flow", 0xabcdu, 1000, 77);
  async_end("net", "flow", 0xabcdu, 2000);
  instant("net", "pfc_xoff", 1500, 9);
  const std::string json = chrome_trace_json();
  EXPECT_NE(json.find("\"ph\":\"b\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"e\""), std::string::npos);
  EXPECT_NE(json.find("\"id\":\"0xabcd\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"s\":\"t\""), std::string::npos);
}

TEST_F(TraceTest, SimTrackOnlyCarriesEventsWithSimTime) {
  trace_enable(64);
  instant("t", "simful", 5000);      // sim + wall tracks
  instant("t", "simless", kNoSimTime);  // wall track only
  const std::string json = chrome_trace_json();
  EXPECT_EQ(count_occurrences(json, "\"name\":\"simful\""), 2u) << json;
  EXPECT_EQ(count_occurrences(json, "\"name\":\"simless\""), 1u) << json;
  // Both process tracks are named for the trace viewer.
  EXPECT_NE(json.find("\"name\":\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("{\"name\":\"wall\"}"), std::string::npos);
  EXPECT_NE(json.find("{\"name\":\"sim\"}"), std::string::npos);
}

TEST_F(TraceTest, ExportWhileDisabledIsValidAndEmpty) {
  const std::string json = chrome_trace_json();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"otherData\""), std::string::npos);
  EXPECT_EQ(json.find("\"ph\":\"i\""), std::string::npos);
}

}  // namespace
}  // namespace vedr::obs
