// Windowed metrics unit coverage (DESIGN.md §15): interval bucketing, ring
// wrap with lazy eviction, empty-interval merges, and exact oracle agreement
// over a replayed golden corpus trace.
#include "obs/windowed.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "obs/histogram.h"
#include "replay/trace_reader.h"

namespace vedr::obs {
namespace {

constexpr std::uint64_t kSec = 1'000'000'000ULL;

TEST(WindowedHistogram, MergesOnlyIntervalsInsideTheWindow) {
  WindowedHistogram wh(kSec, 8);
  wh.record(100, 1 * kSec);             // interval 1
  wh.record(200, 3 * kSec);             // interval 3
  wh.record(300, 5 * kSec + kSec / 2);  // interval 5, the current one

  // A 3s window at t=5.5s covers intervals 3..5: samples 200 and 300.
  Histogram w = wh.window(3 * kSec, 5 * kSec + kSec / 2);
  EXPECT_EQ(w.count(), 2u);
  EXPECT_EQ(w.sum(), 500);

  // A 1s window covers only the current (partial) interval.
  w = wh.window(kSec, 5 * kSec + kSec / 2);
  EXPECT_EQ(w.count(), 1u);
  EXPECT_EQ(w.sum(), 300);

  // A window wider than the stream picks up everything retained.
  w = wh.window(8 * kSec, 5 * kSec + kSec / 2);
  EXPECT_EQ(w.count(), 3u);
  EXPECT_EQ(w.sum(), 600);
}

TEST(WindowedHistogram, EmptyIntervalsContributeNothing) {
  WindowedHistogram wh(kSec, 16);
  wh.record(7, 2 * kSec);
  // A window covering only quiet intervals is a zero histogram — the sample
  // ages out instead of haunting later scrapes.
  const Histogram quiet = wh.window(2 * kSec, 10 * kSec);
  EXPECT_EQ(quiet.count(), 0u);
  EXPECT_EQ(quiet.value_at_quantile(0.5), 0);
  EXPECT_EQ(quiet.value_at_quantile(0.99), 0);
  // A window straddling the sample plus many empty intervals: the merge
  // skips the unwritten slots and finds exactly the one sample.
  const Histogram one = wh.window(10 * kSec, 10 * kSec);
  EXPECT_EQ(one.count(), 1u);
  EXPECT_EQ(one.sum(), 7);
}

TEST(WindowedHistogram, RingWrapEvictsLazily) {
  WindowedHistogram wh(kSec, 4);
  wh.record(1, 0);         // interval 0 -> ring position 0
  wh.record(2, 1 * kSec);  // interval 1 -> ring position 1
  EXPECT_EQ(wh.retained_count(), 2u);

  // Interval 4 lands on ring position 0 and evicts interval 0's sample.
  wh.record(3, 4 * kSec);
  EXPECT_EQ(wh.retained_count(), 2u);

  // Everything addressable at t=4s: interval 1 (sample 2) + interval 4 (3).
  const Histogram w = wh.window(4 * kSec, 4 * kSec);
  EXPECT_EQ(w.count(), 2u);
  EXPECT_EQ(w.sum(), 5);

  // A stale slot never leaks into a window that excludes its interval: at
  // t=9s a 1s window maps to interval 9, whose ring position still holds
  // interval 1's data — skipped because the index does not match.
  EXPECT_EQ(wh.window(kSec, 9 * kSec).count(), 0u);
}

TEST(WindowedHistogram, WindowBeforeFirstIntervalIsSafe) {
  WindowedHistogram wh(kSec, 8);
  wh.record(5, 0);  // interval 0
  // now=0 with a 60s window: the lookback would reach before t=0; the query
  // clamps instead of underflowing the interval index.
  const Histogram w = wh.window(60 * kSec, 0);
  EXPECT_EQ(w.count(), 1u);
}

// Oracle agreement over a replayed golden trace: every corpus record becomes
// one (timestamp, value) sample — the value is the record's encoded size,
// the timestamps stride deterministically (bursty, 0.1–0.46s apart). At
// three probe points mid-stream we compare each window query against a
// histogram rebuilt from scratch over exactly the intervals the window
// covers. The ring holds 128 intervals and the probe windows span at most
// 60, so lazy eviction can never touch a covered interval: agreement must
// be exact — counts, sums, and quantiles.
TEST(WindowedHistogram, OracleAgreementOverGoldenTrace) {
  replay::TraceReader reader(std::string(VEDR_REPLAY_CORPUS_DIR) + "/contention.vtrc");
  replay::TraceRecord rec;
  std::vector<std::pair<std::uint64_t, std::int64_t>> samples;  // (now_ns, value)
  std::uint64_t now = 0;
  std::uint64_t prev = 0;
  while (reader.next(rec) == replay::TraceStatus::kOk) {
    const std::uint64_t off = reader.bytes_read();
    now += kSec / 10 + (off % 37) * (kSec / 100);
    samples.emplace_back(now, static_cast<std::int64_t>(off - prev));
    prev = off;
  }
  ASSERT_GT(samples.size(), 50u) << "corpus trace unexpectedly small";

  WindowedHistogram wh(kSec, 128);
  const std::size_t probe_at[] = {samples.size() / 3, (2 * samples.size()) / 3,
                                  samples.size() - 1};
  std::size_t next_probe = 0;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    wh.record(samples[i].second, samples[i].first);
    if (next_probe >= 3 || i != probe_at[next_probe]) continue;
    ++next_probe;
    const std::uint64_t probe = samples[i].first;
    for (const std::uint64_t win : {10 * kSec, 60 * kSec}) {
      const std::uint64_t cur = probe / kSec;
      const std::uint64_t span = (win + kSec - 1) / kSec;
      Histogram oracle;
      for (std::size_t j = 0; j <= i; ++j) {
        const std::uint64_t idx = samples[j].first / kSec;
        if (idx <= cur && cur - idx < span) oracle.add(samples[j].second);
      }
      const Histogram got = wh.window(win, probe);
      EXPECT_EQ(got.count(), oracle.count()) << "window " << win << " at " << probe;
      EXPECT_EQ(got.sum(), oracle.sum()) << "window " << win << " at " << probe;
      EXPECT_EQ(got.value_at_quantile(0.5), oracle.value_at_quantile(0.5));
      EXPECT_EQ(got.value_at_quantile(0.99), oracle.value_at_quantile(0.99));
    }
  }
  EXPECT_EQ(next_probe, 3u);
}

TEST(WindowedRate, SumsAndRatesOverTheWindow) {
  WindowedRate r(kSec, 8);
  r.add(10, 1 * kSec);
  r.add(20, 2 * kSec);
  r.add(30, 4 * kSec);
  EXPECT_EQ(r.sum_in_window(2 * kSec, 4 * kSec), 30u);  // intervals 3..4
  EXPECT_EQ(r.sum_in_window(4 * kSec, 4 * kSec), 60u);  // intervals 1..4
  EXPECT_DOUBLE_EQ(r.rate_per_sec(4 * kSec, 4 * kSec), 60.0 / 4.0);
  // Full-window denominator: a process younger than the window reads low
  // rather than spiking — the right bias for alerting.
  EXPECT_DOUBLE_EQ(r.rate_per_sec(60 * kSec, 4 * kSec), 1.0);
}

TEST(WindowedRate, CountsAccumulateWithinOneInterval) {
  WindowedRate r(kSec, 8);
  r.add(1, 5 * kSec + 1);
  r.add(2, 5 * kSec + 2);
  r.add(3, 5 * kSec + kSec - 1);
  EXPECT_EQ(r.sum_in_window(kSec, 5 * kSec + kSec - 1), 6u);
}

TEST(WindowedMax, TracksPerIntervalPeaks) {
  WindowedMax m(kSec, 8);
  EXPECT_EQ(m.window_max(10 * kSec, 10 * kSec), 0);  // empty -> 0
  m.record(5, 1 * kSec);
  m.record(3, 1 * kSec + 10);  // same interval, lower: ignored
  m.record(9, 3 * kSec);
  EXPECT_EQ(m.window_max(kSec, 1 * kSec + 20), 5);
  EXPECT_EQ(m.window_max(4 * kSec, 3 * kSec), 9);
  m.record(2, 6 * kSec);
  EXPECT_EQ(m.window_max(2 * kSec, 6 * kSec), 2);  // 9 aged out of 2s
  EXPECT_EQ(m.window_max(8 * kSec, 6 * kSec), 9);  // still inside 8s
}

}  // namespace
}  // namespace vedr::obs
