// Training-loop style usage: a schedule of collectives running back to
// back on one fabric, each with its own Vedrfolnir instance, plus the
// workload generator's distribution properties.
#include <gtest/gtest.h>

#include <cmath>

#include "anomaly/injectors.h"
#include "collective/runner.h"
#include "core/vedrfolnir.h"
#include "eval/workload.h"
#include "net/network.h"
#include "sim/simulator.h"

namespace vedr {
namespace {

TEST(Workload, DeterministicAndDistributed) {
  const auto a = eval::make_workload(500, 42);
  const auto b = eval::make_workload(500, 42);
  ASSERT_EQ(a.size(), 500u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].op, b[i].op);
    EXPECT_EQ(a[i].gap_after, b[i].gap_after);
  }
  // ~97% AllReduce/AllGather (§IV-A).
  int ar_ag = 0;
  for (const auto& op : a)
    if (op.op == collective::OpType::kAllReduce || op.op == collective::OpType::kAllGather)
      ++ar_ag;
  EXPECT_GT(ar_ag, 450);
  EXPECT_LT(ar_ag, 500);
}

TEST(Workload, SequentialCollectivesOnOneFabric) {
  sim::Simulator sim;
  net::NetConfig cfg;
  net::Network network(sim, net::make_fat_tree(4, cfg), cfg);
  const auto hosts = network.topology().hosts();
  std::vector<net::NodeId> participants(hosts.begin(), hosts.begin() + 8);

  const auto schedule = eval::make_workload(3, 7, [] {
    eval::WorkloadParams p;
    p.scale = 1.0 / 512.0;
    return p;
  }());

  sim::Tick at = 0;
  std::vector<std::unique_ptr<collective::CollectiveRunner>> runners;
  // Distinct collective ids keep the telemetry flows of consecutive ops
  // apart even on one fabric.
  for (std::size_t i = 0; i < schedule.size(); ++i) {
    auto plan = schedule[i].op == collective::OpType::kAllReduce
                    ? collective::CollectivePlan::ring(static_cast<int>(i),
                                                       collective::OpType::kAllReduce,
                                                       participants, schedule[i].bytes_per_step)
                    : collective::CollectivePlan::ring(static_cast<int>(i), schedule[i].op,
                                                       participants, schedule[i].bytes_per_step);
    runners.push_back(
        std::make_unique<collective::CollectiveRunner>(network, std::move(plan)));
    runners.back()->start(at);
    at += 20 * sim::kMillisecond + schedule[i].gap_after;
  }
  sim.run(5 * sim::kSecond);
  for (const auto& r : runners) EXPECT_TRUE(r->done());
}

TEST(Workload, KeysOfDistinctCollectivesNeverCollide) {
  const std::vector<net::NodeId> parts{0, 1, 2, 3};
  const auto p0 = collective::CollectivePlan::ring(0, collective::OpType::kAllGather, parts, 100);
  const auto p1 = collective::CollectivePlan::ring(1, collective::OpType::kAllGather, parts, 100);
  for (int f = 0; f < 4; ++f) {
    for (int s = 0; s < p0.num_steps(); ++s) {
      EXPECT_FALSE(p0.key_for(f, s) == p1.key_for(f, s));
      EXPECT_FALSE(p1.contains(p0.key_for(f, s)));
    }
  }
}

}  // namespace
}  // namespace vedr
