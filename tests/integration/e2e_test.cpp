// Cross-module end-to-end properties: per-scenario diagnosis under each
// system, overhead ordering, determinism, losslessness, and the
// Halving-and-Doubling pipeline the paper motivates but does not evaluate.
#include <gtest/gtest.h>

#include "anomaly/injectors.h"
#include "baselines/full_polling.h"
#include "baselines/hawkeye.h"
#include "collective/runner.h"
#include "core/vedrfolnir.h"
#include "eval/experiment.h"
#include "net/host.h"
#include "net/network.h"
#include "net/switch.h"
#include "sim/simulator.h"

namespace vedr {
namespace {

eval::ScenarioParams small_params() {
  eval::ScenarioParams p;
  p.scale = 1.0 / 128.0;
  return p;
}

TEST(E2E, EverySystemRunsEveryScenario) {
  const eval::RunConfig cfg;
  const auto params = small_params();
  const net::Topology topo = net::make_fat_tree(4, cfg.netcfg);
  const auto routing = net::RoutingTable::shortest_paths(topo);
  for (auto type : {eval::ScenarioType::kFlowContention, eval::ScenarioType::kIncast,
                    eval::ScenarioType::kPfcStorm, eval::ScenarioType::kPfcBackpressure}) {
    const auto spec = eval::make_scenario(type, 1, topo, routing, params);
    for (auto system :
         {eval::SystemKind::kVedrfolnir, eval::SystemKind::kHawkeyeMaxR,
          eval::SystemKind::kHawkeyeMinR, eval::SystemKind::kFullPolling}) {
      const auto r = eval::run_case(spec, system, cfg);
      EXPECT_TRUE(r.cc_completed) << eval::to_string(system) << " " << spec.str();
      EXPECT_FALSE(r.outcome.fn && r.outcome.fp) << "outcome must be exclusive";
    }
  }
}

TEST(E2E, RunCaseIsDeterministic) {
  const eval::RunConfig cfg;
  const auto params = small_params();
  const net::Topology topo = net::make_fat_tree(4, cfg.netcfg);
  const auto routing = net::RoutingTable::shortest_paths(topo);
  const auto spec =
      eval::make_scenario(eval::ScenarioType::kFlowContention, 2, topo, routing, params);
  const auto a = eval::run_case(spec, eval::SystemKind::kVedrfolnir, cfg);
  const auto b = eval::run_case(spec, eval::SystemKind::kVedrfolnir, cfg);
  EXPECT_EQ(a.sim_events, b.sim_events);
  EXPECT_EQ(a.cc_time, b.cc_time);
  EXPECT_EQ(a.telemetry_bytes, b.telemetry_bytes);
  EXPECT_EQ(a.outcome.label(), b.outcome.label());
}

TEST(E2E, OverheadOrderingAcrossSystems) {
  // The paper's Fig. 10 ordering on one contention case:
  // Vedrfolnir < Hawkeye-MaxR <= Hawkeye-MinR, and full polling highest.
  const eval::RunConfig cfg;
  const auto params = small_params();
  const net::Topology topo = net::make_fat_tree(4, cfg.netcfg);
  const auto routing = net::RoutingTable::shortest_paths(topo);

  std::int64_t telemetry[4] = {};
  for (int s = 0; s < 4; ++s) {
    std::int64_t sum = 0;
    for (int id = 0; id < 3; ++id) {
      const auto spec = eval::make_scenario(eval::ScenarioType::kFlowContention, id, topo,
                                            routing, params);
      sum += eval::run_case(spec, static_cast<eval::SystemKind>(s), cfg).telemetry_bytes;
    }
    telemetry[s] = sum;
  }
  EXPECT_LT(telemetry[0], telemetry[1]);  // Vedrfolnir < Hawkeye-MaxR
  EXPECT_LE(telemetry[1], telemetry[2]);  // MaxR <= MinR
  EXPECT_LT(telemetry[0], telemetry[3]);  // Vedrfolnir < FullPolling
}

TEST(E2E, FabricStaysLosslessUnderIncast) {
  // PFC safety property: whatever the incast degree, no data drops.
  for (int senders : {2, 4, 8, 15}) {
    sim::Simulator sim;
    net::NetConfig cfg;
    net::Network network(sim, net::make_fat_tree(4, cfg), cfg);
    for (int s = 0; s < senders; ++s) {
      const net::FlowKey key = anomaly::background_key(s, s, 15);
      network.host(15).expect_flow(key, 2 * 1024 * 1024);
      network.host(s).start_flow(key, 2 * 1024 * 1024);
    }
    sim.run(5 * sim::kSecond);
    for (net::NodeId sw : network.switches())
      EXPECT_EQ(network.switch_at(sw).drops(), 0) << senders << " senders";
  }
}

TEST(E2E, HalvingDoublingDiagnosis) {
  // The paper's decomposition generalizes beyond Ring (§V); the whole
  // pipeline must work when destinations change per step.
  sim::Simulator sim;
  net::NetConfig cfg;
  net::Network network(sim, net::make_fat_tree(4, cfg), cfg);
  const std::vector<net::NodeId> participants = {0, 2, 4, 6, 8, 10, 12, 14};
  auto plan = collective::CollectivePlan::halving_doubling(
      0, collective::OpType::kAllGather, participants, 1024 * 1024);
  collective::CollectiveRunner runner(network, std::move(plan));
  core::Vedrfolnir vedr(network, runner);

  const net::FlowKey bg = anomaly::background_key(0, 1, participants[3]);
  anomaly::inject_flow(network, {bg, 24 * 1024 * 1024, 0});
  runner.start(0);
  sim.run(5 * sim::kSecond);

  ASSERT_TRUE(runner.done());
  const auto diag = vedr.diagnose();
  EXPECT_TRUE(diag.detects_flow(bg)) << diag.summary();
  EXPECT_FALSE(diag.critical_path.empty());
}

TEST(E2E, AllReduceUnderStormRecovers) {
  sim::Simulator sim;
  net::NetConfig cfg;
  net::Network network(sim, net::make_fat_tree(4, cfg), cfg);
  const auto hosts = network.topology().hosts();
  std::vector<net::NodeId> participants(hosts.begin(), hosts.begin() + 8);
  auto plan = collective::CollectivePlan::ring(0, collective::OpType::kAllReduce, participants,
                                               1024 * 1024);
  collective::CollectiveRunner runner(network, std::move(plan));
  core::Vedrfolnir vedr(network, runner);

  // Storm on a switch-to-switch link of flow 1's path.
  net::PortRef injection{};
  const net::FlowKey key = runner.plan().key_for(1, 0);
  for (const auto& hop : network.routing().port_path_of(network.topology(), key)) {
    if (network.topology().is_host(hop.node)) continue;
    const auto peer = network.topology().peer(hop.node, hop.port);
    if (!network.topology().is_host(peer.node)) {
      injection = peer;
      break;
    }
  }
  if (!injection.valid()) GTEST_SKIP() << "no switch-switch hop on this path";
  anomaly::inject_storm(network, {injection, 100 * sim::kMicrosecond, 1 * sim::kMillisecond});

  runner.start(0);
  sim.run(10 * sim::kSecond);
  ASSERT_TRUE(runner.done());
  EXPECT_GT(runner.finish_time(), 1 * sim::kMillisecond);
  const auto diag = vedr.diagnose();
  bool traced = false;
  for (const auto& f : diag.findings)
    if (f.type == core::AnomalyType::kPfcStorm && f.root_port == injection) traced = true;
  EXPECT_TRUE(traced) << diag.summary();
}

TEST(E2E, NoAnomalyMeansNoFalsePositive) {
  // A clean run must not implicate any background flow (there are none) and
  // should collect almost nothing.
  sim::Simulator sim;
  net::NetConfig cfg;
  net::Network network(sim, net::make_fat_tree(4, cfg), cfg);
  const auto hosts = network.topology().hosts();
  std::vector<net::NodeId> participants(hosts.begin(), hosts.begin() + 8);
  auto plan = collective::CollectivePlan::ring(0, collective::OpType::kAllGather, participants,
                                               1024 * 1024);
  collective::CollectiveRunner runner(network, std::move(plan));
  core::Vedrfolnir vedr(network, runner);
  runner.start(0);
  sim.run(5 * sim::kSecond);
  ASSERT_TRUE(runner.done());
  const auto diag = vedr.diagnose();
  EXPECT_TRUE(diag.all_contenders().empty()) << diag.summary();
}

// Parameterized sweep: the collective completes and is diagnosed across
// sizes and participant counts.
class CollectiveSweep : public ::testing::TestWithParam<std::tuple<int, std::int64_t>> {};

TEST_P(CollectiveSweep, ContentionDetectedAcrossShapes) {
  const auto [n_participants, bytes] = GetParam();
  sim::Simulator sim;
  net::NetConfig cfg;
  net::Network network(sim, net::make_fat_tree(4, cfg), cfg);
  const auto hosts = network.topology().hosts();
  std::vector<net::NodeId> participants(hosts.begin(), hosts.begin() + n_participants);
  auto plan = collective::CollectivePlan::ring(0, collective::OpType::kAllGather, participants,
                                               bytes);
  collective::CollectiveRunner runner(network, std::move(plan));
  core::Vedrfolnir vedr(network, runner);
  const net::FlowKey bg = anomaly::background_key(0, hosts[15], participants[1]);
  anomaly::inject_flow(network, {bg, 8 * bytes, 0});
  runner.start(0);
  sim.run(30 * sim::kSecond);
  ASSERT_TRUE(runner.done());
  EXPECT_TRUE(vedr.diagnose().detects_flow(bg));
}

INSTANTIATE_TEST_SUITE_P(Shapes, CollectiveSweep,
                         ::testing::Combine(::testing::Values(2, 4, 8),
                                            ::testing::Values(512 * 1024, 2 * 1024 * 1024)));

}  // namespace
}  // namespace vedr
