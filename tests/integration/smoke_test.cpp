// End-to-end smoke tests: the full stack (simulator -> fabric -> collective
// -> diagnosis) on small scenarios. These run first during bring-up; the
// detailed per-module suites live alongside each library.
#include <gtest/gtest.h>

#include "anomaly/injectors.h"
#include "collective/runner.h"
#include "core/vedrfolnir.h"
#include "eval/experiment.h"
#include "net/host.h"
#include "net/network.h"
#include "net/switch.h"
#include "sim/simulator.h"

namespace vedr {
namespace {

TEST(Smoke, SingleFlowCompletesAtLineRate) {
  sim::Simulator sim;
  net::NetConfig cfg;
  net::Network network(sim, net::make_chain(2, cfg));

  const auto hosts = network.hosts();
  const net::FlowKey key{hosts[0], hosts[1], 10, 20};
  const std::int64_t bytes = 4 * 1024 * 1024;

  sim::Tick done_at = sim::kNever;
  network.host(hosts[1]).expect_flow(key, bytes);
  network.host(hosts[0]).start_flow(key, bytes,
                                    [&](const net::FlowKey&, sim::Tick t) { done_at = t; });
  sim.run();

  ASSERT_NE(done_at, sim::kNever);
  // 4 MiB at 100 Gbps is ~336 us of serialization; the ideal FCT plus slack
  // bounds it; no congestion on an idle chain.
  const sim::Tick ideal = network.ideal_fct(key, bytes);
  EXPECT_GE(done_at, ideal / 2);
  EXPECT_LE(done_at, ideal * 2);
}

TEST(Smoke, RingAllGatherCompletesOnFatTree) {
  sim::Simulator sim;
  net::NetConfig cfg;
  net::Network network(sim, net::make_fat_tree(4, cfg));

  const auto hosts = network.hosts();
  std::vector<net::NodeId> participants(hosts.begin(), hosts.begin() + 8);
  auto plan = collective::CollectivePlan::ring(0, collective::OpType::kAllGather, participants,
                                               1 * 1024 * 1024);
  collective::CollectiveRunner runner(network, std::move(plan));
  runner.start(0);
  sim.run();

  ASSERT_TRUE(runner.done());
  EXPECT_GT(runner.finish_time(), 0);
  // 7 steps of 1 MiB: each step ~84 us serialized; dependencies serialize
  // roughly linearly.
  EXPECT_LT(runner.finish_time(), 100 * sim::kMillisecond);
}

TEST(Smoke, VedrfolnirDiagnosesInjectedContention) {
  sim::Simulator sim;
  net::NetConfig cfg;
  net::Network network(sim, net::make_fat_tree(4, cfg));

  const auto hosts = network.hosts();
  std::vector<net::NodeId> participants(hosts.begin(), hosts.begin() + 8);
  auto plan = collective::CollectivePlan::ring(0, collective::OpType::kAllGather, participants,
                                               4 * 1024 * 1024);
  collective::CollectiveRunner runner(network, std::move(plan));
  core::Vedrfolnir vedr(network, runner);

  // A fat background flow colliding with the collective at a participant's
  // access link.
  const net::FlowKey bg = anomaly::background_key(0, hosts[12], participants[1]);
  anomaly::inject_flow(network, {bg, 16 * 1024 * 1024, 0});

  runner.start(0);
  sim.run(2 * sim::kSecond);
  ASSERT_TRUE(runner.done());

  auto diag = vedr.diagnose();
  EXPECT_TRUE(diag.detects_flow(bg)) << diag.summary();
  EXPECT_FALSE(diag.critical_path.empty());
  EXPECT_GT(vedr.total_polls(), 0);
}

TEST(Smoke, RunCaseHarnessAllScenarios) {
  eval::RunConfig cfg;
  eval::ScenarioParams params;
  params.scale = 1.0 / 64.0;

  const net::Topology topo = net::make_fat_tree(4, cfg.netcfg);
  const auto routing = net::RoutingTable::shortest_paths(topo);

  for (auto type : {eval::ScenarioType::kFlowContention, eval::ScenarioType::kIncast,
                    eval::ScenarioType::kPfcStorm, eval::ScenarioType::kPfcBackpressure}) {
    const auto spec = eval::make_scenario(type, 0, topo, routing, params);
    const auto result = eval::run_case(spec, eval::SystemKind::kVedrfolnir, cfg);
    EXPECT_TRUE(result.cc_completed) << spec.str();
    EXPECT_GT(result.sim_events, 0u);
  }
}

}  // namespace
}  // namespace vedr
