// Extension anomaly classes beyond the paper's four evaluated scenarios:
// routing loops, PFC deadlocks, and the stalled-flow watchdog that makes
// both detectable (§II-B, §V).
#include <gtest/gtest.h>

#include "anomaly/injectors.h"
#include "collective/runner.h"
#include "core/vedrfolnir.h"
#include "net/host.h"
#include "net/network.h"
#include "net/switch.h"
#include "sim/simulator.h"

namespace vedr {
namespace {

TEST(RoutingLoop, PacketsDieByTtlAndAreCounted) {
  sim::Simulator sim;
  net::NetConfig cfg;
  net::Network network(sim, net::make_fat_tree(4, cfg), cfg);

  // Loop between host 15's edge switch and one of its aggs, for dst 15.
  const net::NodeId edge = network.topology().peer(15, 0).node;
  const net::NodeId agg = network.topology().node(edge).ports.at(2).peer;
  anomaly::inject_routing_loop(network, 15, edge, agg, 0);

  const net::FlowKey key = anomaly::background_key(0, 0, 15);
  network.host(15).expect_flow(key, 64 * 4096);
  network.host(0).start_flow(key, 64 * 4096);
  sim.run(50 * sim::kMillisecond);

  EXPECT_GT(network.stats().counter("switch.ttl_drops"), 0);
  const auto drops = network.switch_at(edge).telem().drops_since(0);
  const auto agg_drops = network.switch_at(agg).telem().drops_since(0);
  EXPECT_FALSE(drops.empty() && agg_drops.empty());
}

TEST(RoutingLoop, VedrfolnirDiagnosesLoopOnCollectivePath) {
  sim::Simulator sim;
  net::NetConfig cfg;
  net::Network network(sim, net::make_fat_tree(4, cfg), cfg);

  const auto hosts = network.topology().hosts();
  std::vector<net::NodeId> participants(hosts.begin(), hosts.begin() + 8);
  auto plan = collective::CollectivePlan::ring(0, collective::OpType::kAllGather, participants,
                                               2 * 1024 * 1024);
  collective::CollectiveRunner runner(network, std::move(plan));
  core::Vedrfolnir vedr(network, runner);

  // Mid-run reconfiguration glitch: participant 3's edge and agg point at
  // each other for its address.
  const net::NodeId victim = participants[3];
  const net::NodeId edge = network.topology().peer(victim, 0).node;
  const net::NodeId agg = network.topology().node(edge).ports.at(2).peer;
  anomaly::inject_routing_loop(network, victim, edge, agg, 100 * sim::kMicrosecond);

  runner.start(0);
  sim.run(200 * sim::kMillisecond);

  // The flow into the victim can never complete.
  EXPECT_FALSE(runner.done());
  const auto diag = vedr.diagnose();
  ASSERT_TRUE(diag.has_type(core::AnomalyType::kRoutingLoop)) << diag.summary();
  for (const auto& f : diag.findings) {
    if (f.type != core::AnomalyType::kRoutingLoop) continue;
    EXPECT_TRUE(f.root_port.node == edge || f.root_port.node == agg) << f.str();
  }
}

TEST(Watchdog, FiresWhenFlowFullyStalled) {
  sim::Simulator sim;
  net::NetConfig cfg;
  net::Network network(sim, net::make_fat_tree(4, cfg), cfg);

  const auto hosts = network.topology().hosts();
  std::vector<net::NodeId> participants(hosts.begin(), hosts.begin() + 4);
  auto plan = collective::CollectivePlan::ring(0, collective::OpType::kAllGather, participants,
                                               4 * 1024 * 1024);
  collective::CollectiveRunner runner(network, std::move(plan));
  core::Vedrfolnir vedr(network, runner);

  // Halt participant 0's uplink for 5 ms: no ACKs, no RTT triggers.
  const auto access = network.topology().peer(participants[0], 0);
  sim.schedule_at(50 * sim::kMicrosecond, [&network, access] {
    network.deliver_pfc(access.node, access.port, net::Priority::kData, true);
  });
  sim.schedule_at(5 * sim::kMillisecond, [&network, access] {
    network.deliver_pfc(access.node, access.port, net::Priority::kData, false);
  });
  runner.start(0);
  sim.run();

  ASSERT_TRUE(runner.done());
  EXPECT_GT(vedr.monitor_of(participants[0]).watchdog_polls(), 0)
      << "a 5 ms stall must trip the 1 ms watchdog";
  EXPECT_GT(network.stats().counter("monitor.watchdog_polls"), 0);
}

TEST(Watchdog, DisabledViaConfig) {
  sim::Simulator sim;
  net::NetConfig cfg;
  net::Network network(sim, net::make_fat_tree(4, cfg), cfg);
  const auto hosts = network.topology().hosts();
  std::vector<net::NodeId> participants(hosts.begin(), hosts.begin() + 4);
  auto plan = collective::CollectivePlan::ring(0, collective::OpType::kAllGather, participants,
                                               4 * 1024 * 1024);
  collective::CollectiveRunner runner(network, std::move(plan));
  core::VedrfolnirConfig vcfg;
  vcfg.detection.stall_timeout = 0;
  core::Vedrfolnir vedr(network, runner, vcfg);

  const auto access = network.topology().peer(participants[0], 0);
  sim.schedule_at(50 * sim::kMicrosecond, [&network, access] {
    network.deliver_pfc(access.node, access.port, net::Priority::kData, true);
  });
  sim.schedule_at(5 * sim::kMillisecond, [&network, access] {
    network.deliver_pfc(access.node, access.port, net::Priority::kData, false);
  });
  runner.start(0);
  sim.run();
  EXPECT_EQ(vedr.monitor_of(participants[0]).watchdog_polls(), 0);
}

TEST(Deadlock, CyclicPauseFormsAndIsDiagnosed) {
  sim::Simulator sim;
  net::NetConfig cfg;
  cfg.ecn_kmin_bytes = 1 << 30;  // no ECN: nothing tames line-rate start
  cfg.ecn_kmax_bytes = 1 << 30;
  net::Network network(sim, net::make_switch_ring(4, 1, cfg), cfg);
  anomaly::pin_clockwise_routes(network, network.switches());

  const std::vector<net::NodeId> participants = {0, 2, 1, 3};
  auto plan = collective::CollectivePlan::ring(0, collective::OpType::kAllGather, participants,
                                               4 * 1024 * 1024);
  collective::CollectiveRunner runner(network, std::move(plan));
  core::Vedrfolnir vedr(network, runner);
  runner.start(0);
  sim.run(2 * sim::kSecond);

  // The cyclic buffer dependency never resolves.
  EXPECT_FALSE(runner.done());
  int paused_switches = 0;
  for (net::NodeId sw : network.switches()) {
    for (net::PortId p = 0; p < network.switch_at(sw).num_ports(); ++p)
      if (network.switch_at(sw).sending_pause_on(p)) {
        ++paused_switches;
        break;
      }
  }
  EXPECT_EQ(paused_switches, 4) << "every ring switch should be pausing its neighbour";

  const auto diag = vedr.diagnose();
  EXPECT_TRUE(diag.has_type(core::AnomalyType::kPfcDeadlock)) << diag.summary();
}

TEST(LoadImbalance, EcmpCollisionBetweenCollectiveFlowsDiagnosed) {
  sim::Simulator sim;
  net::NetConfig cfg;
  net::Network network(sim, net::make_fat_tree(4, cfg), cfg);

  // Ring over 8 cross-pod hosts; then pin both of edge 16's uplinks onto
  // ONE agg (the ECMP misjudgment of §II-B anomaly 1) so the two flows
  // leaving hosts 0 and 1 fight over a single 100G link.
  const std::vector<net::NodeId> participants = {0, 4, 1, 5, 2, 6, 3, 7};
  auto plan = collective::CollectivePlan::ring(0, collective::OpType::kAllGather, participants,
                                               2 * 1024 * 1024);
  const net::NodeId edge = network.topology().peer(0, 0).node;  // hosts 0,1 share it
  const net::PortId uplink = anomaly::port_towards(
      network.topology(), edge, network.topology().node(edge).ports.at(2).peer);
  for (net::NodeId dst : {4, 5, 6, 7})
    network.routing().override_route(edge, dst, {uplink});

  collective::CollectiveRunner runner(network, std::move(plan));
  core::Vedrfolnir vedr(network, runner);
  runner.start(0);
  sim.run(10 * sim::kSecond);
  ASSERT_TRUE(runner.done());

  const auto diag = vedr.diagnose();
  ASSERT_TRUE(diag.has_type(core::AnomalyType::kLoadImbalance)) << diag.summary();
  // The overloaded pinned uplink must be among the implicated ports (other
  // fabric ports can legitimately show secondary collisions too).
  bool pinned_port_found = false;
  for (const auto& f : diag.findings) {
    if (f.type != core::AnomalyType::kLoadImbalance) continue;
    for (const auto& p : f.congested_ports)
      if (p == net::PortRef{edge, uplink}) pinned_port_found = true;
  }
  EXPECT_TRUE(pinned_port_found) << diag.summary();
}

TEST(Deadlock, LosslessEvenWhileDeadlocked) {
  sim::Simulator sim;
  net::NetConfig cfg;
  cfg.ecn_kmin_bytes = 1 << 30;
  cfg.ecn_kmax_bytes = 1 << 30;
  net::Network network(sim, net::make_switch_ring(4, 1, cfg), cfg);
  anomaly::pin_clockwise_routes(network, network.switches());
  const std::vector<net::NodeId> participants = {0, 2, 1, 3};
  auto plan = collective::CollectivePlan::ring(0, collective::OpType::kAllGather, participants,
                                               4 * 1024 * 1024);
  collective::CollectiveRunner runner(network, std::move(plan));
  runner.start(0);
  sim.run(2 * sim::kSecond);
  for (net::NodeId sw : network.switches())
    EXPECT_EQ(network.switch_at(sw).drops(), 0) << "PFC must stay lossless even in deadlock";
}

}  // namespace
}  // namespace vedr
