#include "sim/simulator.h"

#include <gtest/gtest.h>

namespace vedr::sim {
namespace {

TEST(Simulator, ClockAdvancesWithEvents) {
  Simulator s;
  EXPECT_EQ(s.now(), 0);
  Tick seen = -1;
  s.schedule_in(500, [&] { seen = s.now(); });
  s.run();
  EXPECT_EQ(seen, 500);
  EXPECT_EQ(s.now(), 500);
}

TEST(Simulator, ScheduleInIsRelative) {
  Simulator s;
  Tick second = -1;
  s.schedule_in(100, [&] { s.schedule_in(50, [&] { second = s.now(); }); });
  s.run();
  EXPECT_EQ(second, 150);
}

TEST(Simulator, ScheduleAtAbsolute) {
  Simulator s;
  Tick seen = -1;
  s.schedule_at(1234, [&] { seen = s.now(); });
  s.run();
  EXPECT_EQ(seen, 1234);
}

TEST(Simulator, ScheduleAtPastClampsToNow) {
  Simulator s;
  Tick seen = -1;
  s.schedule_in(100, [&] {
    s.schedule_at(10, [&] { seen = s.now(); });  // in the past
  });
  s.run();
  EXPECT_EQ(seen, 100);
}

TEST(Simulator, NegativeDelayClampsToNow) {
  Simulator s;
  Tick seen = -1;
  s.schedule_in(-5, [&] { seen = s.now(); });
  s.run();
  EXPECT_EQ(seen, 0);
}

TEST(Simulator, RunUntilBoundsExecution) {
  Simulator s;
  int count = 0;
  for (Tick t = 100; t <= 1000; t += 100) s.schedule_at(t, [&] { ++count; });
  const auto executed = s.run(500);
  EXPECT_EQ(executed, 5u);
  EXPECT_EQ(count, 5);
  EXPECT_FALSE(s.idle());
  s.run();
  EXPECT_EQ(count, 10);
  EXPECT_TRUE(s.idle());
}

TEST(Simulator, StepExecutesOne) {
  Simulator s;
  int count = 0;
  s.schedule_in(1, [&] { ++count; });
  s.schedule_in(2, [&] { ++count; });
  EXPECT_TRUE(s.step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(s.step());
  EXPECT_FALSE(s.step());
  EXPECT_EQ(count, 2);
}

TEST(Simulator, CancelStopsEvent) {
  Simulator s;
  bool ran = false;
  const auto id = s.schedule_in(10, [&] { ran = true; });
  EXPECT_TRUE(s.cancel(id));
  s.run();
  EXPECT_FALSE(ran);
}

TEST(Simulator, EventsExecutedCounts) {
  Simulator s;
  for (int i = 0; i < 7; ++i) s.schedule_in(i, [] {});
  s.run();
  EXPECT_EQ(s.events_executed(), 7u);
}

TEST(TimeHelpers, TransmissionDelay) {
  // 1500 bytes at 100 Gbps = 120 ns.
  EXPECT_EQ(transmission_delay(1500, 100.0), 120);
  // 1 KB at 1 Gbps = 8192 ns.
  EXPECT_EQ(transmission_delay(1024, 1.0), 8192);
  EXPECT_EQ(transmission_delay(0, 100.0), 0);
}

TEST(TimeHelpers, Conversions) {
  EXPECT_DOUBLE_EQ(to_us(1500), 1.5);
  EXPECT_DOUBLE_EQ(to_ms(2'500'000), 2.5);
  EXPECT_DOUBLE_EQ(to_s(3 * kSecond), 3.0);
}

}  // namespace
}  // namespace vedr::sim
