// Steady-state allocation audit: once the engine's pools (event slots,
// packet slab, ring queues, telemetry maps) have grown to a workload's
// high-water mark, continuing that workload must perform ZERO heap
// allocations. Verified by overriding global operator new/delete with
// counting wrappers and running a congestion-heavy DCQCN scenario — data
// flows, ECN marking, CNPs, rate timers — through a warm-up phase and then a
// measured window.
//
// Under sanitizers the interposed allocator changes what "an allocation" is
// (ASan's quarantine, TSan's shadow) and the engine deliberately trades this
// guarantee away; the assertion is skipped there but the scenario still runs.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "collective/plan.h"
#include "collective/runner.h"
#include "net/network.h"
#include "net/topology.h"
#include "sim/simulator.h"

// The override must not exist under sanitizers: their runtimes interpose the
// allocator themselves, and GCC's -Wmismatched-new-delete flags our
// free()-backed delete against their new.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define VEDR_ALLOC_OVERRIDE 0
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer) || \
    __has_feature(memory_sanitizer)
#define VEDR_ALLOC_OVERRIDE 0
#else
#define VEDR_ALLOC_OVERRIDE 1
#endif
#else
#define VEDR_ALLOC_OVERRIDE 1
#endif

namespace {

std::atomic<bool> g_counting{false};
std::atomic<std::uint64_t> g_allocs{0};
constexpr bool kSanitized = VEDR_ALLOC_OVERRIDE == 0;

}  // namespace

#if VEDR_ALLOC_OVERRIDE
// Counting global allocator. Only the counter is added; allocation behavior
// is unchanged (malloc/free underneath, as libstdc++ does by default).
void* operator new(std::size_t n) {
  if (g_counting.load(std::memory_order_relaxed))
    g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc{};
}

void* operator new[](std::size_t n) { return ::operator new(n); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
#endif  // VEDR_ALLOC_OVERRIDE

namespace vedr {
namespace {

TEST(SteadyStateAlloc, CongestedDcqcnWorkloadAllocatesNothing) {
  sim::Simulator sim;
  // A 2-tier fat-tree with an incast-prone ring AllGather: enough ECN
  // marking and CNP traffic to keep every hot path (host tx, switch queues,
  // PFC accounting, DCQCN timers, ACK/CNP control packets) exercised.
  net::NetConfig cfg;
  const net::Topology topo = net::make_fat_tree(4, cfg);
  net::Network network(sim, topo, cfg);

  const auto hosts = network.hosts();
  ASSERT_GE(hosts.size(), 8u);

  // Ring AllGather over 8 participants; repeated steps give the run a long
  // steady phase after the first few steps have warmed every pool.
  std::vector<net::NodeId> participants(hosts.begin(), hosts.begin() + 8);
  collective::CollectivePlan plan = collective::CollectivePlan::ring(
      0, collective::OpType::kAllGather, participants, 64 << 20);
  collective::CollectiveRunner runner(network, std::move(plan));
  runner.start(0);

  // Warm-up: run the first stretch, letting pools/rings/maps reach their
  // high-water marks.
  sim.run(2 * sim::kMillisecond);
  ASSERT_FALSE(sim.idle()) << "warm-up consumed the whole collective; shrink the window";

  // Measured window: steady-state forwarding must not allocate.
  g_allocs.store(0);
  g_counting.store(true);
  const std::uint64_t executed_before = sim.events_executed();
  sim.run(4 * sim::kMillisecond);
  g_counting.store(false);
  const std::uint64_t executed = sim.events_executed() - executed_before;

  ASSERT_GT(executed, 10'000u) << "window too small to call this steady state";
  if (kSanitized) {
    GTEST_SKIP() << "allocation counting is not meaningful under sanitizers";
  }
  EXPECT_EQ(g_allocs.load(), 0u)
      << "steady-state hot path allocated (" << g_allocs.load() << " allocations over "
      << executed << " events)";
}

}  // namespace
}  // namespace vedr
