#include "sim/sharded_engine.h"

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <utility>
#include <vector>

#include "common/spsc_ring.h"
#include "sim/shard.h"

namespace vedr::sim {
namespace {

TEST(ShardedEngine, ClampsWorkersToDomains) {
  ShardedEngine engine(3, /*lookahead=*/10, /*num_workers=*/16);
  EXPECT_EQ(engine.num_domains(), 3);
  EXPECT_EQ(engine.num_workers(), 3);

  ShardedEngine floor(2, 10, 0);
  EXPECT_EQ(floor.num_workers(), 1);
}

TEST(ShardedEngine, SingleDomainExecutesInTimeOrder) {
  ShardedEngine engine(1, /*lookahead=*/5, /*num_workers=*/1);
  std::vector<Tick> fired;
  Simulator& sim = engine.domain(0);
  sim.schedule_at(30, [&] { fired.push_back(sim.now()); });
  sim.schedule_at(10, [&] { fired.push_back(sim.now()); });
  sim.schedule_at(20, [&] { fired.push_back(sim.now()); });

  const std::uint64_t n = engine.run(100);
  EXPECT_EQ(n, 3u);
  EXPECT_EQ(fired, (std::vector<Tick>{10, 20, 30}));
  EXPECT_EQ(engine.events_executed(), 3u);
}

TEST(ShardedEngine, UntilBoundIsInclusive) {
  // Matches Simulator::run(until): an event AT the bound executes, one past
  // it stays queued.
  ShardedEngine engine(2, /*lookahead=*/4, /*num_workers=*/2);
  int at_bound = 0, past_bound = 0;
  engine.domain(0).schedule_at(50, [&] { ++at_bound; });
  engine.domain(1).schedule_at(51, [&] { ++past_bound; });

  engine.run(50);
  EXPECT_EQ(at_bound, 1);
  EXPECT_EQ(past_bound, 0);

  engine.run(51);
  EXPECT_EQ(past_bound, 1);
}

TEST(ShardedEngine, RunReturnsZeroWhenDrained) {
  ShardedEngine engine(2, 10, 2);
  engine.domain(0).schedule_at(1, [] {});
  EXPECT_EQ(engine.run(100), 1u);
  EXPECT_EQ(engine.run(1000), 0u);
}

TEST(ShardedEngine, WindowsTrackSparseEventTimes) {
  // Two event clusters 1000 ticks apart with lookahead 10: the engine must
  // jump between clusters (windows start at the global minimum next event),
  // not grind through a thousand empty windows.
  ShardedEngine engine(2, /*lookahead=*/10, /*num_workers=*/2);
  std::atomic<int> fired{0};  // bumped from two worker threads
  engine.domain(0).schedule_at(0, [&] { ++fired; });
  engine.domain(1).schedule_at(3, [&] { ++fired; });
  engine.domain(0).schedule_at(1000, [&] { ++fired; });
  engine.domain(1).schedule_at(1003, [&] { ++fired; });

  engine.run(2000);
  EXPECT_EQ(fired.load(), 4);
  EXPECT_LE(engine.windows(), 4u);
  EXPECT_GE(engine.windows(), 2u);
}

TEST(ShardedEngine, HooksRunUnderTheDomainsShardScope) {
  ShardedEngine engine(3, 10, 2);
  std::mutex mu;
  std::vector<std::pair<int, int>> drained;  // (hook arg, tls domain)
  std::vector<std::pair<int, int>> flushed;
  engine.set_drain_hook([&](int d) {
    std::lock_guard<std::mutex> lock(mu);
    drained.emplace_back(d, current_domain());
  });
  engine.set_flush_hook([&](int d) {
    std::lock_guard<std::mutex> lock(mu);
    flushed.emplace_back(d, current_domain());
  });
  for (int d = 0; d < 3; ++d) engine.domain(d).schedule_at(d, [] {});

  engine.run(100);
  ASSERT_FALSE(drained.empty());
  ASSERT_FALSE(flushed.empty());
  bool saw[3] = {false, false, false};
  for (const auto& [arg, tls] : drained) {
    EXPECT_EQ(arg, tls) << "drain hook ran outside its domain's ShardScope";
    saw[arg] = true;
  }
  EXPECT_TRUE(saw[0] && saw[1] && saw[2]);
  for (const auto& [arg, tls] : flushed)
    EXPECT_EQ(arg, tls) << "flush hook ran outside its domain's ShardScope";
}

TEST(ShardedEngine, CrossDomainHandoffLandsAfterTheWindow) {
  // The conservative contract end to end: domain 0 produces a message at
  // t=5 with delivery delay == lookahead; domain 1's drain hook merges it
  // at the next window boundary and it executes exactly at its arrival
  // time — the engine never lets a window overrun an inbound handoff.
  constexpr Tick kLookahead = 10;
  ShardedEngine engine(2, kLookahead, 2);
  common::SpscRing<Tick> lane(16);
  std::vector<Tick> delivered;

  engine.domain(0).schedule_at(5, [&] { lane.push(engine.domain(0).now() + kLookahead); });
  engine.set_drain_hook([&](int d) {
    if (d != 1) return;
    std::vector<Tick> arrivals;
    lane.drain_into(arrivals);
    for (const Tick at : arrivals)
      engine.domain(1).schedule_at(at, [&] { delivered.push_back(engine.domain(1).now()); });
  });

  engine.run(1000);
  ASSERT_EQ(delivered.size(), 1u);
  EXPECT_EQ(delivered[0], 15);
  EXPECT_EQ(engine.events_executed(), 2u);
}

}  // namespace
}  // namespace vedr::sim
