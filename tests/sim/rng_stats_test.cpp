#include <gtest/gtest.h>

#include "sim/rng.h"
#include "sim/stats.h"

namespace vedr::sim {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformIntInRange) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    const auto v = r.uniform_int(-3, 9);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 9);
  }
}

TEST(Rng, UniformIntSingletonRange) {
  Rng r(7);
  EXPECT_EQ(r.uniform_int(5, 5), 5);
}

TEST(Rng, UniformDoubleInRange) {
  Rng r(9);
  for (int i = 0; i < 1000; ++i) {
    const double v = r.uniform(2.0, 4.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 4.0);
  }
}

TEST(Rng, IndexCoversContainer) {
  Rng r(11);
  bool seen[5] = {};
  for (int i = 0; i < 500; ++i) seen[r.index(5)] = true;
  for (bool s : seen) EXPECT_TRUE(s);
}

TEST(Rng, ForkIsDeterministicAndIndependent) {
  Rng parent(99);
  Rng c1 = parent.fork(1);
  Rng c2 = parent.fork(2);
  Rng c1_again = Rng(99).fork(1);
  EXPECT_EQ(c1.next_u64(), c1_again.next_u64());
  EXPECT_NE(Rng(99).fork(1).next_u64(), c2.next_u64());
}

TEST(Rng, MixAvalanche) {
  // Single-bit input changes should flip roughly half the output bits.
  const std::uint64_t base = Rng::mix(0x1234, 0x5678);
  const std::uint64_t flipped = Rng::mix(0x1235, 0x5678);
  const int popcount = __builtin_popcountll(base ^ flipped);
  EXPECT_GT(popcount, 16);
  EXPECT_LT(popcount, 48);
}

TEST(Summary, BasicMoments) {
  Summary s;
  for (double x : {1.0, 2.0, 3.0, 4.0}) s.add(x);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_NEAR(s.stddev(), 1.118, 1e-3);
}

TEST(Summary, EmptyIsZero) {
  Summary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(StatsRegistry, CountersAccumulate) {
  StatsRegistry reg;
  reg.add_counter("a");
  reg.add_counter("a", 5);
  reg.add_counter("b", -2);
  EXPECT_EQ(reg.counter("a"), 6);
  EXPECT_EQ(reg.counter("b"), -2);
  EXPECT_EQ(reg.counter("missing"), 0);
}

TEST(StatsRegistry, SummariesAndReset) {
  StatsRegistry reg;
  reg.add_sample("x", 1.0);
  reg.add_sample("x", 3.0);
  EXPECT_DOUBLE_EQ(reg.summary("x").mean(), 2.0);
  EXPECT_EQ(reg.summary("missing").count(), 0u);
  reg.reset();
  EXPECT_EQ(reg.counter("a"), 0);
  EXPECT_EQ(reg.summary("x").count(), 0u);
}

}  // namespace
}  // namespace vedr::sim
