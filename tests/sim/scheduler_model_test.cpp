// Randomized model check of the typed-event engine against a naive reference
// scheduler: thousands of interleaved schedule/cancel/pop operations, driven
// by a seeded RNG, must produce the identical firing sequence (time AND
// schedule order) and identical size() at every step. The reference is a
// plain sorted vector — too slow to ship, trivially correct.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

#include "sim/event_queue.h"

namespace vedr::sim {
namespace {

/// The obviously-correct scheduler: a flat list, linear-scan removal, full
/// stable sort on (time, seq) at every pop.
class ReferenceQueue {
 public:
  std::uint64_t schedule(Tick at) {
    items_.push_back({at, next_seq_});
    return next_seq_++;
  }

  bool cancel(std::uint64_t seq) {
    auto it = std::find_if(items_.begin(), items_.end(),
                           [seq](const Item& x) { return x.seq == seq; });
    if (it == items_.end()) return false;
    items_.erase(it);
    return true;
  }

  bool empty() const { return items_.empty(); }
  std::size_t size() const { return items_.size(); }

  /// Pops the earliest (time, seq) item and returns its seq.
  std::uint64_t pop() {
    auto it = std::min_element(items_.begin(), items_.end(), [](const Item& a, const Item& b) {
      return a.at != b.at ? a.at < b.at : a.seq < b.seq;
    });
    const std::uint64_t seq = it->seq;
    items_.erase(it);
    return seq;
  }

 private:
  struct Item {
    Tick at;
    std::uint64_t seq;
  };
  std::vector<Item> items_;
  std::uint64_t next_seq_ = 0;
};

struct LiveEvent {
  EventId id;         ///< engine handle
  std::uint64_t seq;  ///< reference handle (also its identity in `fired`)
};

void run_model_check(std::uint64_t seed, int ops) {
  std::mt19937_64 rng(seed);
  EventQueue q;
  ReferenceQueue ref;

  // Fired events append their reference-seq here; the engine must reproduce
  // the reference pop order exactly.
  std::vector<std::uint64_t> fired;
  static std::vector<std::uint64_t>* fired_sink = nullptr;
  fired_sink = &fired;
  q.set_handler(EventKind::kStepPoll,
                [](const EventPayload& p) { fired_sink->push_back(p.a); });

  std::vector<LiveEvent> live;
  Tick clock = 0;  // times never scheduled before the last pop: keeps the run causal

  for (int op = 0; op < ops; ++op) {
    const int dice = static_cast<int>(rng() % 100);
    if (dice < 50 || live.empty()) {
      // Schedule (half typed, half callback — both share the seq counter).
      const Tick at = clock + static_cast<Tick>(rng() % 64);
      const std::uint64_t seq = ref.schedule(at);
      EventId id;
      if (rng() % 2 == 0) {
        id = q.schedule_event(at, EventKind::kStepPoll, {nullptr, seq, 0});
      } else {
        id = q.schedule_callback(at, [seq] { fired_sink->push_back(seq); });
      }
      live.push_back({id, seq});
    } else if (dice < 75) {
      // Cancel a random live event.
      const std::size_t pick = rng() % live.size();
      const LiveEvent ev = live[pick];
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
      EXPECT_TRUE(q.cancel(ev.id));
      EXPECT_TRUE(ref.cancel(ev.seq));
      EXPECT_FALSE(q.cancel(ev.id)) << "double cancel must fail";
    } else if (!ref.empty()) {
      // Pop: both queues must fire the same event.
      const Tick at = q.next_time();
      const std::size_t before = fired.size();
      const Tick ran_at = q.run_next();
      EXPECT_EQ(ran_at, at);
      clock = ran_at;
      const std::uint64_t expect_seq = ref.pop();
      ASSERT_EQ(fired.size(), before + 1);
      EXPECT_EQ(fired.back(), expect_seq)
          << "engine and reference popped different events at t=" << ran_at;
      live.erase(std::remove_if(live.begin(), live.end(),
                                [&](const LiveEvent& e) { return e.seq == expect_seq; }),
                 live.end());
    }
    ASSERT_EQ(q.size(), ref.size()) << "live-event count diverged after op " << op;
    ASSERT_EQ(q.empty(), ref.empty());
  }

  // Drain: remaining events must come out in identical order.
  while (!ref.empty()) {
    const std::size_t before = fired.size();
    q.run_next();
    ASSERT_EQ(fired.size(), before + 1);
    EXPECT_EQ(fired.back(), ref.pop());
  }
  EXPECT_TRUE(q.empty());
}

TEST(SchedulerModelCheck, ThousandsOfInterleavedOpsMatchReference) {
  run_model_check(/*seed=*/0x5EEDBA5E, /*ops=*/4000);
}

TEST(SchedulerModelCheck, MultipleSeeds) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) run_model_check(seed * 7919, 1500);
}

TEST(SchedulerModelCheck, SameSeedSameFiringOrder) {
  // Determinism: two engines fed the identical operation stream produce the
  // identical firing sequence.
  auto trace = [](std::uint64_t seed) {
    std::mt19937_64 rng(seed);
    EventQueue q;
    static std::vector<std::uint64_t>* sink = nullptr;
    std::vector<std::uint64_t> fired;
    sink = &fired;
    q.set_handler(EventKind::kPollSweep,
                  [](const EventPayload& p) { sink->push_back(p.a); });
    std::vector<EventId> ids;
    for (std::uint64_t i = 0; i < 2000; ++i) {
      const Tick at = static_cast<Tick>(rng() % 97);
      ids.push_back(q.schedule_event(at, EventKind::kPollSweep, {nullptr, i, 0}));
      if (i % 5 == 3) q.cancel(ids[rng() % ids.size()]);
    }
    while (!q.empty()) q.run_next();
    return fired;
  };
  EXPECT_EQ(trace(12345), trace(12345));
  EXPECT_NE(trace(12345), trace(54321));  // sanity: the trace depends on the seed
}

}  // namespace
}  // namespace vedr::sim
