#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/check.h"

namespace vedr::sim {
namespace {

TEST(EventQueue, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_callback(30, [&] { order.push_back(3); });
  q.schedule_callback(10, [&] { order.push_back(1); });
  q.schedule_callback(20, [&] { order.push_back(2); });
  while (!q.empty()) q.run_next();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, SameTickRunsInScheduleOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 16; ++i) q.schedule_callback(42, [&order, i] { order.push_back(i); });
  while (!q.empty()) q.run_next();
  ASSERT_EQ(order.size(), 16u);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, NextTimeReportsEarliest) {
  EventQueue q;
  EXPECT_EQ(q.next_time(), kNever);
  q.schedule_callback(100, [] {});
  q.schedule_callback(50, [] {});
  EXPECT_EQ(q.next_time(), 50);
}

TEST(EventQueue, RunNextReturnsEventTime) {
  EventQueue q;
  q.schedule_callback(77, [] {});
  EXPECT_EQ(q.run_next(), 77);
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  bool ran = false;
  const EventId id = q.schedule_callback(10, [&] { ran = true; });
  EXPECT_TRUE(q.cancel(id));
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(ran);
}

TEST(EventQueue, CancelIsIdempotent) {
  EventQueue q;
  const EventId id = q.schedule_callback(10, [] {});
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, CancelAfterRunReturnsFalse) {
  EventQueue q;
  const EventId id = q.schedule_callback(10, [] {});
  q.run_next();
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, CancelMiddleKeepsOthers) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_callback(10, [&] { order.push_back(1); });
  const EventId id = q.schedule_callback(20, [&] { order.push_back(2); });
  q.schedule_callback(30, [&] { order.push_back(3); });
  q.cancel(id);
  EXPECT_EQ(q.size(), 2u);
  while (!q.empty()) q.run_next();
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(EventQueue, SizeTracksLiveEvents) {
  EventQueue q;
  const EventId a = q.schedule_callback(1, [] {});
  q.schedule_callback(2, [] {});
  EXPECT_EQ(q.size(), 2u);
  q.cancel(a);
  EXPECT_EQ(q.size(), 1u);
  q.run_next();
  EXPECT_EQ(q.size(), 0u);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, EventsScheduledDuringExecutionRun) {
  EventQueue q;
  int count = 0;
  q.schedule_callback(10, [&] {
    ++count;
    q.schedule_callback(20, [&] { ++count; });
  });
  while (!q.empty()) q.run_next();
  EXPECT_EQ(count, 2);
}

TEST(EventQueue, RunNextOnEmptyQueueFiresCheck) {
  EventQueue q;
  common::ScopedThrowOnCheckFailure guard;
  EXPECT_THROW(q.run_next(), common::CheckFailure);
}

TEST(EventQueue, SameTickTieBreakSurvivesInterleavedScheduling) {
  // Schedule same-tick events both up front and from inside a running event;
  // the (time, id) tie-break must still replay exact schedule order — this is
  // the property that keeps whole-simulation runs bit-reproducible.
  EventQueue q;
  std::vector<int> order;
  q.schedule_callback(5, [&] {
    order.push_back(0);
    q.schedule_callback(5, [&] { order.push_back(3); });
    q.schedule_callback(5, [&] { order.push_back(4); });
  });
  q.schedule_callback(5, [&] { order.push_back(1); });
  q.schedule_callback(5, [&] { order.push_back(2); });
  while (!q.empty()) q.run_next();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, IdenticalSchedulesReplayIdentically) {
  auto run_once = [] {
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 64; ++i) q.schedule_callback((i * 13) % 8, [&order, i] { order.push_back(i); });
    while (!q.empty()) q.run_next();
    return order;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(EventQueue, CancelReclaimsClosureImmediately) {
  // Regression: the old queue tombstoned cancelled entries, so a cancelled
  // closure (and everything it captured) stayed alive until its time came up
  // in the heap. Cancel must free the capture on the spot.
  EventQueue q;
  auto token = std::make_shared<int>(42);
  const EventId id = q.schedule_callback(1'000'000'000, [token] { (void)*token; });
  EXPECT_EQ(token.use_count(), 2);
  EXPECT_TRUE(q.cancel(id));
  EXPECT_EQ(token.use_count(), 1) << "cancelled closure must be destroyed immediately";
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueue, SizeAndEmptyCountLiveEventsOnly) {
  // Regression companion: with true removal there are no tombstones, so
  // size()/empty() always reflect live events — even after heavy churn.
  EventQueue q;
  std::vector<EventId> ids;
  for (int i = 0; i < 100; ++i) ids.push_back(q.schedule_callback(i, [] {}));
  for (int i = 0; i < 100; i += 2) EXPECT_TRUE(q.cancel(ids[static_cast<std::size_t>(i)]));
  EXPECT_EQ(q.size(), 50u);
  std::size_t ran = 0;
  while (!q.empty()) {
    q.run_next();
    ++ran;
  }
  EXPECT_EQ(ran, 50u);
}

TEST(EventQueue, SlotPoolStopsGrowingUnderChurn) {
  // Steady state must reuse slots: with at most 2 events outstanding, the
  // pool never needs more than 2 slots no matter how many events flow.
  EventQueue q;
  q.schedule_callback(0, [] {});
  q.run_next();
  const std::size_t warm = q.pool_capacity();
  for (int i = 1; i <= 10000; ++i) {
    q.schedule_callback(i, [] {});
    q.run_next();
  }
  EXPECT_EQ(q.pool_capacity(), warm);
}

int g_typed_fired = 0;
std::vector<std::uint64_t> g_typed_payloads;

void typed_test_handler(const EventPayload& p) {
  ++g_typed_fired;
  g_typed_payloads.push_back(p.a);
}

TEST(EventQueue, TypedEventsDispatchThroughHandler) {
  EventQueue q;
  g_typed_fired = 0;
  g_typed_payloads.clear();
  q.set_handler(EventKind::kStepPoll, &typed_test_handler);
  q.schedule_event(10, EventKind::kStepPoll, {nullptr, 7, 0});
  q.schedule_event(20, EventKind::kStepPoll, {nullptr, 9, 0});
  while (!q.empty()) q.run_next();
  EXPECT_EQ(g_typed_fired, 2);
  EXPECT_EQ(g_typed_payloads, (std::vector<std::uint64_t>{7, 9}));
}

TEST(EventQueue, SameTickOrderSpansTypedAndCallbackPaths) {
  // Both scheduling paths share one sequence counter, so same-tick events
  // interleave in global schedule order regardless of which path each used.
  EventQueue q;
  static std::vector<int>* order_sink = nullptr;
  std::vector<int> order;
  order_sink = &order;
  q.set_handler(EventKind::kPollSweep,
                [](const EventPayload& p) { order_sink->push_back(static_cast<int>(p.a)); });
  q.schedule_event(5, EventKind::kPollSweep, {nullptr, 0, 0});
  q.schedule_callback(5, [&] { order.push_back(1); });
  q.schedule_event(5, EventKind::kPollSweep, {nullptr, 2, 0});
  q.schedule_callback(5, [&] { order.push_back(3); });
  while (!q.empty()) q.run_next();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(EventQueue, CancelTypedEvent) {
  EventQueue q;
  g_typed_fired = 0;
  g_typed_payloads.clear();
  q.set_handler(EventKind::kStepPoll, &typed_test_handler);
  const EventId id = q.schedule_event(10, EventKind::kStepPoll, {nullptr, 1, 0});
  q.schedule_event(20, EventKind::kStepPoll, {nullptr, 2, 0});
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));
  while (!q.empty()) q.run_next();
  EXPECT_EQ(g_typed_payloads, (std::vector<std::uint64_t>{2}));
}

TEST(EventQueue, StaleIdCannotCancelRecycledSlot) {
  // After a slot is reclaimed and reused, an old EventId for it must not
  // cancel the new occupant (generation validation).
  EventQueue q;
  const EventId stale = q.schedule_callback(1, [] {});
  q.run_next();  // slot reclaimed
  bool ran = false;
  q.schedule_callback(2, [&] { ran = true; });  // reuses the slot
  EXPECT_FALSE(q.cancel(stale));
  while (!q.empty()) q.run_next();
  EXPECT_TRUE(ran);
}

TEST(EventQueue, ConflictingHandlerRegistrationFiresCheck) {
  EventQueue q;
  q.set_handler(EventKind::kCollectiveStart, &typed_test_handler);
  q.set_handler(EventKind::kCollectiveStart, &typed_test_handler);  // idempotent: OK
  common::ScopedThrowOnCheckFailure guard;
  EXPECT_THROW(q.set_handler(EventKind::kCollectiveStart,
                             [](const EventPayload&) {}),
               common::CheckFailure);
}

TEST(EventQueue, UnregisteredTypedKindFiresCheck) {
  EventQueue q;
  q.schedule_event(1, EventKind::kHostWakeup, {nullptr, 0, 0});
  common::ScopedThrowOnCheckFailure guard;
  EXPECT_THROW(q.run_next(), common::CheckFailure);
}

TEST(EventQueue, ManyEventsStressOrdering) {
  EventQueue q;
  Tick last = -1;
  bool ordered = true;
  for (int i = 0; i < 10000; ++i) {
    const Tick t = (i * 7919) % 1000;  // pseudo-shuffled times
    q.schedule_callback(t, [&, t] {
      if (t < last) ordered = false;
      last = t;
    });
  }
  while (!q.empty()) q.run_next();
  EXPECT_TRUE(ordered);
}

}  // namespace
}  // namespace vedr::sim
