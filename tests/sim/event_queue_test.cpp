#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/check.h"

namespace vedr::sim {
namespace {

TEST(EventQueue, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(30, [&] { order.push_back(3); });
  q.schedule(10, [&] { order.push_back(1); });
  q.schedule(20, [&] { order.push_back(2); });
  while (!q.empty()) q.run_next();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, SameTickRunsInScheduleOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 16; ++i) q.schedule(42, [&order, i] { order.push_back(i); });
  while (!q.empty()) q.run_next();
  ASSERT_EQ(order.size(), 16u);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, NextTimeReportsEarliest) {
  EventQueue q;
  EXPECT_EQ(q.next_time(), kNever);
  q.schedule(100, [] {});
  q.schedule(50, [] {});
  EXPECT_EQ(q.next_time(), 50);
}

TEST(EventQueue, RunNextReturnsEventTime) {
  EventQueue q;
  q.schedule(77, [] {});
  EXPECT_EQ(q.run_next(), 77);
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  bool ran = false;
  const EventId id = q.schedule(10, [&] { ran = true; });
  EXPECT_TRUE(q.cancel(id));
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(ran);
}

TEST(EventQueue, CancelIsIdempotent) {
  EventQueue q;
  const EventId id = q.schedule(10, [] {});
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, CancelAfterRunReturnsFalse) {
  EventQueue q;
  const EventId id = q.schedule(10, [] {});
  q.run_next();
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, CancelMiddleKeepsOthers) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(10, [&] { order.push_back(1); });
  const EventId id = q.schedule(20, [&] { order.push_back(2); });
  q.schedule(30, [&] { order.push_back(3); });
  q.cancel(id);
  EXPECT_EQ(q.size(), 2u);
  while (!q.empty()) q.run_next();
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(EventQueue, SizeTracksLiveEvents) {
  EventQueue q;
  const EventId a = q.schedule(1, [] {});
  q.schedule(2, [] {});
  EXPECT_EQ(q.size(), 2u);
  q.cancel(a);
  EXPECT_EQ(q.size(), 1u);
  q.run_next();
  EXPECT_EQ(q.size(), 0u);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, EventsScheduledDuringExecutionRun) {
  EventQueue q;
  int count = 0;
  q.schedule(10, [&] {
    ++count;
    q.schedule(20, [&] { ++count; });
  });
  while (!q.empty()) q.run_next();
  EXPECT_EQ(count, 2);
}

TEST(EventQueue, RunNextOnEmptyQueueFiresCheck) {
  EventQueue q;
  common::ScopedThrowOnCheckFailure guard;
  EXPECT_THROW(q.run_next(), common::CheckFailure);
}

TEST(EventQueue, SameTickTieBreakSurvivesInterleavedScheduling) {
  // Schedule same-tick events both up front and from inside a running event;
  // the (time, id) tie-break must still replay exact schedule order — this is
  // the property that keeps whole-simulation runs bit-reproducible.
  EventQueue q;
  std::vector<int> order;
  q.schedule(5, [&] {
    order.push_back(0);
    q.schedule(5, [&] { order.push_back(3); });
    q.schedule(5, [&] { order.push_back(4); });
  });
  q.schedule(5, [&] { order.push_back(1); });
  q.schedule(5, [&] { order.push_back(2); });
  while (!q.empty()) q.run_next();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, IdenticalSchedulesReplayIdentically) {
  auto run_once = [] {
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 64; ++i) q.schedule((i * 13) % 8, [&order, i] { order.push_back(i); });
    while (!q.empty()) q.run_next();
    return order;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(EventQueue, ManyEventsStressOrdering) {
  EventQueue q;
  Tick last = -1;
  bool ordered = true;
  for (int i = 0; i < 10000; ++i) {
    const Tick t = (i * 7919) % 1000;  // pseudo-shuffled times
    q.schedule(t, [&, t] {
      if (t < last) ordered = false;
      last = t;
    });
  }
  while (!q.empty()) q.run_next();
  EXPECT_TRUE(ordered);
}

}  // namespace
}  // namespace vedr::sim
