#include "net/congestion_control.h"

#include <gtest/gtest.h>

#include "collective/runner.h"
#include "net/host.h"
#include "net/network.h"
#include "net/switch.h"
#include "sim/simulator.h"

namespace vedr::net {
namespace {

SwiftParams params() {
  SwiftParams p;
  p.line_rate_gbps = 100.0;
  return p;
}

TEST(Swift, StartsAtLineRate) {
  sim::Simulator sim;
  SwiftFlow f(sim, params(), 10 * sim::kMicrosecond);
  EXPECT_DOUBLE_EQ(f.rate_gbps(), 100.0);
  EXPECT_EQ(f.target_delay(), 15 * sim::kMicrosecond);
}

TEST(Swift, BelowTargetHoldsOrRaises) {
  sim::Simulator sim;
  SwiftFlow f(sim, params(), 10 * sim::kMicrosecond);
  f.on_rtt(12 * sim::kMicrosecond);
  EXPECT_DOUBLE_EQ(f.rate_gbps(), 100.0);  // clamped at line rate
}

TEST(Swift, AboveTargetDecreasesProportionally) {
  sim::Simulator sim;
  SwiftFlow f(sim, params(), 10 * sim::kMicrosecond);
  // RTT = 2x target: excess = 0.5, capped at max_mdf 0.5 -> rate halves.
  f.on_rtt(30 * sim::kMicrosecond);
  EXPECT_NEAR(f.rate_gbps(), 50.0, 1.0);
}

TEST(Swift, DecreaseHoldoffLimitsBackToBackCuts) {
  sim::Simulator sim;
  SwiftFlow f(sim, params(), 10 * sim::kMicrosecond);
  f.on_rtt(30 * sim::kMicrosecond);
  const double after_first = f.rate_gbps();
  f.on_rtt(30 * sim::kMicrosecond);  // same instant: held off
  EXPECT_DOUBLE_EQ(f.rate_gbps(), after_first);
}

TEST(Swift, RecoversAdditively) {
  sim::Simulator sim;
  SwiftFlow f(sim, params(), 10 * sim::kMicrosecond);
  f.on_rtt(60 * sim::kMicrosecond);
  const double low = f.rate_gbps();
  for (int i = 0; i < 10; ++i) f.on_rtt(11 * sim::kMicrosecond);
  EXPECT_NEAR(f.rate_gbps(), low + 10 * params().ai_gbps, 1e-9);
}

TEST(Swift, NeverBelowMinRate) {
  sim::Simulator sim;
  SwiftFlow f(sim, params(), 10 * sim::kMicrosecond);
  for (int i = 0; i < 100; ++i) {
    sim.schedule_in(60 * sim::kMicrosecond, [] {});
    sim.run();
    f.on_rtt(1 * sim::kMillisecond);
  }
  EXPECT_GE(f.rate_gbps(), params().min_rate_gbps);
}

TEST(Swift, DeactivateFreezes) {
  sim::Simulator sim;
  SwiftFlow f(sim, params(), 10 * sim::kMicrosecond);
  f.deactivate();
  f.on_rtt(1 * sim::kMillisecond);
  EXPECT_DOUBLE_EQ(f.rate_gbps(), 100.0);
}

TEST(Swift, FactorySelectsAlgorithm) {
  sim::Simulator sim;
  const auto dcqcn = make_congestion_control(CcAlgorithm::kDcqcn, sim, DcqcnParams{},
                                             SwiftParams{}, 10 * sim::kMicrosecond);
  const auto swift = make_congestion_control(CcAlgorithm::kSwift, sim, DcqcnParams{},
                                             SwiftParams{}, 10 * sim::kMicrosecond);
  EXPECT_NE(dynamic_cast<DcqcnCc*>(dcqcn.get()), nullptr);
  EXPECT_NE(dynamic_cast<SwiftFlow*>(swift.get()), nullptr);
}

TEST(Swift, IncastUnderSwiftStaysLossless) {
  sim::Simulator sim;
  NetConfig cfg;
  cfg.cc_algorithm = CcAlgorithm::kSwift;
  Network net(sim, make_star(5, cfg), cfg);
  int done = 0;
  for (NodeId s = 0; s < 4; ++s) {
    const FlowKey key{s, 4, static_cast<std::uint16_t>(10 + s), 20};
    net.host(4).expect_flow(key, 2 * 1024 * 1024);
    net.host(s).start_flow(key, 2 * 1024 * 1024,
                           [&done](const FlowKey&, sim::Tick) { ++done; });
  }
  sim.run(5 * sim::kSecond);
  EXPECT_EQ(done, 4);
  EXPECT_EQ(net.switch_at(net.switches()[0]).drops(), 0);
  // Swift throttled the senders: none should still be at line rate mid-run
  // is hard to assert post-hoc, but completion without drops under a 4:1
  // incast demonstrates the control loop engaged with PFC as backstop.
}

TEST(Swift, CollectiveCompletesUnderSwift) {
  sim::Simulator sim;
  NetConfig cfg;
  cfg.cc_algorithm = CcAlgorithm::kSwift;
  Network net(sim, make_fat_tree(4, cfg), cfg);
  const auto hosts = net.topology().hosts();
  std::vector<NodeId> participants(hosts.begin(), hosts.begin() + 8);
  auto plan = collective::CollectivePlan::ring(0, collective::OpType::kAllGather, participants,
                                               1024 * 1024);
  collective::CollectiveRunner runner(net, std::move(plan));
  runner.start(0);
  sim.run(10 * sim::kSecond);
  EXPECT_TRUE(runner.done());
}

TEST(Swift, Names) {
  EXPECT_STREQ(to_string(CcAlgorithm::kDcqcn), "DCQCN");
  EXPECT_STREQ(to_string(CcAlgorithm::kSwift), "Swift");
}

}  // namespace
}  // namespace vedr::net
