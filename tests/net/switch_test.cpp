#include "net/switch.h"

#include <gtest/gtest.h>

#include "net/host.h"
#include "net/network.h"
#include "sim/simulator.h"

namespace vedr::net {
namespace {

/// Star fabric: N senders into one switch makes queueing/PFC/ECN easy to
/// provoke deterministically.
struct StarFixture {
  sim::Simulator sim;
  Topology topo;
  Network net;

  explicit StarFixture(int hosts = 5, NetConfig cfg = NetConfig{})
      : topo(make_star(hosts, cfg)), net(sim, topo, cfg) {}

  NodeId sw() const { return topo.switches()[0]; }
};

TEST(Switch, ForwardsBetweenHosts) {
  StarFixture f(3);
  const FlowKey key{0, 2, 5, 6};
  sim::Tick done = sim::kNever;
  f.net.host(2).expect_flow(key, 8 * 4096, [&](const FlowKey&, sim::Tick t) { done = t; });
  f.net.host(0).start_flow(key, 8 * 4096);
  f.sim.run();
  EXPECT_NE(done, sim::kNever);
}

TEST(Switch, IncastBuildsQueueAndEcnMarks) {
  StarFixture f(5);
  // 4 senders -> host 4: 400 Gbps offered into a 100 Gbps egress.
  for (NodeId s = 0; s < 4; ++s) {
    const FlowKey key{s, 4, static_cast<std::uint16_t>(10 + s), 20};
    f.net.host(4).expect_flow(key, 4 * 1024 * 1024);
    f.net.host(0 + s).start_flow(key, 4 * 1024 * 1024);
  }
  // Sample the queue shortly after start.
  std::int64_t peak_q = 0;
  for (int i = 1; i <= 40; ++i) {
    f.sim.schedule_at(i * 10 * sim::kMicrosecond, [&] {
      peak_q = std::max(peak_q,
                        f.net.switch_at(f.sw()).queue_bytes(4, Priority::kData));
    });
  }
  f.sim.run();
  EXPECT_GT(peak_q, f.net.config().ecn_kmin_bytes);
  // DCQCN must have been engaged: CNPs only exist if CE marks were set.
  EXPECT_EQ(f.net.switch_at(f.sw()).drops(), 0);
}

TEST(Switch, PfcPausesUpstreamHostBeforeOverflow) {
  NetConfig cfg;
  cfg.ecn_kmin_bytes = 1 << 30;  // disable ECN so only PFC protects buffers
  cfg.ecn_kmax_bytes = 1 << 30;
  StarFixture f(5, cfg);
  for (NodeId s = 0; s < 4; ++s) {
    const FlowKey key{s, 4, static_cast<std::uint16_t>(10 + s), 20};
    f.net.host(4).expect_flow(key, 2 * 1024 * 1024);
    f.net.host(s).start_flow(key, 2 * 1024 * 1024);
  }
  bool saw_pause = false;
  for (int i = 1; i <= 200; ++i) {
    f.sim.schedule_at(i * 5 * sim::kMicrosecond, [&] {
      for (PortId p = 0; p < 5; ++p)
        if (f.net.switch_at(f.sw()).sending_pause_on(p)) saw_pause = true;
    });
  }
  f.sim.run();
  EXPECT_TRUE(saw_pause);
  EXPECT_EQ(f.net.switch_at(f.sw()).drops(), 0) << "PFC must keep the fabric lossless";
  EXPECT_GT(f.net.stats().counter("pfc.pause_frames"), 0);
  EXPECT_GT(f.net.stats().counter("pfc.resume_frames"), 0);
}

TEST(Switch, ForcePauseHaltsPeerAndRecordsInjectedCause) {
  StarFixture f(3);
  const FlowKey key{0, 2, 5, 6};
  sim::Tick done = sim::kNever;
  f.net.host(2).expect_flow(key, 64 * 4096, [&](const FlowKey&, sim::Tick t) { done = t; });
  f.net.host(0).start_flow(key, 64 * 4096);

  // Storm: switch port facing host 0 emits PAUSE for 2 ms.
  f.sim.schedule_at(10 * sim::kMicrosecond,
                    [&] { f.net.switch_at(f.sw()).force_pause(0, 2 * sim::kMillisecond); });
  f.sim.run();
  ASSERT_NE(done, sim::kNever);
  EXPECT_GT(done, 2 * sim::kMillisecond);

  const auto& causes = f.net.switch_at(f.sw()).telem().all_causes();
  ASSERT_FALSE(causes.empty());
  EXPECT_TRUE(causes.front().injected);
  EXPECT_EQ(causes.front().ingress_port.port, 0);
}

TEST(Switch, TtlExpiryDropsAndCounts) {
  StarFixture f(3);
  Packet pkt = make_data(FlowKey{0, 2, 5, 6}, 0, 4096, /*ttl=*/1);
  // TTL 1: decremented to 0 at the switch, next hop would need 1 more.
  pkt.ttl = 0;
  f.net.host(0); // ensure constructed
  f.sim.schedule_at(0, [&f, pkt] {
    f.net.switch_at(f.sw()).handle_rx(pkt, 0);
  });
  f.sim.run();
  EXPECT_EQ(f.net.switch_at(f.sw()).ttl_drops(), 1);
}

TEST(Switch, ControlPriorityBypassesDataBacklog) {
  StarFixture f(5);
  // Saturate egress to host 4 with data.
  for (NodeId s = 0; s < 3; ++s) {
    const FlowKey key{s, 4, static_cast<std::uint16_t>(10 + s), 20};
    f.net.host(4).expect_flow(key, 8 * 1024 * 1024);
    f.net.host(s).start_flow(key, 8 * 1024 * 1024);
  }
  // At 200 us (queue deep), send a control notification 3 -> 4.
  sim::Tick sent_at = 0, got_at = sim::kNever;
  f.net.host(4).set_control_listener(
      [&](const Packet&, sim::Tick t) { got_at = t; });
  f.sim.schedule_at(200 * sim::kMicrosecond, [&] {
    sent_at = f.sim.now();
    Packet pkt;
    pkt.type = PacketType::kNotification;
    pkt.flow = FlowKey{3, 4, 77, 77};
    pkt.meta = NotifyInfo{0, 0, 1, 3};
    f.net.host(3).send_control(std::move(pkt));
  });
  f.sim.run();
  ASSERT_NE(got_at, sim::kNever);
  // Strict priority: the notification crosses in near-baseline time even
  // though megabytes of data are queued ahead.
  EXPECT_LT(got_at - sent_at, 50 * sim::kMicrosecond);
}

TEST(Switch, TelemetryRecordsFlowsAndMeters) {
  StarFixture f(3);
  const FlowKey key{0, 2, 5, 6};
  f.net.host(2).expect_flow(key, 16 * 4096);
  f.net.host(0).start_flow(key, 16 * 4096);
  f.sim.run();
  const auto& sw = f.net.switch_at(f.sw());
  // Egress toward host 2 is port 2 in a star (one port per host, in order).
  const auto report = sw.telem().port_snapshot(2, f.sim.now(), 0);
  ASSERT_EQ(report.flows.size(), 1u);
  EXPECT_EQ(report.flows[0].flow, key);
  EXPECT_EQ(report.flows[0].pkts, 16);
  ASSERT_FALSE(report.meters.empty());
  EXPECT_EQ(report.meters[0].in_port, 0);
  EXPECT_GT(report.meters[0].bytes, 16 * 4096);
}

TEST(Switch, QueueCapDropsWhenPfcDisabled) {
  NetConfig cfg;
  cfg.pfc_xoff_bytes = 1 << 30;  // PFC off
  cfg.pfc_xon_bytes = 1 << 30;
  cfg.ecn_kmin_bytes = 1 << 30;  // ECN off
  cfg.ecn_kmax_bytes = 1 << 30;
  cfg.queue_cap_bytes = 256 * 1024;
  StarFixture f(5, cfg);
  for (NodeId s = 0; s < 4; ++s) {
    const FlowKey key{s, 4, static_cast<std::uint16_t>(10 + s), 20};
    f.net.host(4).expect_flow(key, 4 * 1024 * 1024);
    f.net.host(s).start_flow(key, 4 * 1024 * 1024);
  }
  f.sim.run(50 * sim::kMillisecond);
  EXPECT_GT(f.net.switch_at(f.sw()).drops(), 0)
      << "without PFC/ECN a 4:1 incast must overflow a 256 KB queue";
}

}  // namespace
}  // namespace vedr::net
