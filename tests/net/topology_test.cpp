#include "net/topology.h"

#include <gtest/gtest.h>

namespace vedr::net {
namespace {

NetConfig cfg() { return NetConfig{}; }

TEST(Topology, FatTreeK4Shape) {
  const Topology t = make_fat_tree(4, cfg());
  // Paper setup: 20 switches (16 pod + 4 core) and 16 hosts.
  EXPECT_EQ(t.num_hosts(), 16);
  EXPECT_EQ(t.switches().size(), 20u);
  EXPECT_EQ(t.size(), 36u);
}

TEST(Topology, FatTreeHostsComeFirst) {
  const Topology t = make_fat_tree(4, cfg());
  for (NodeId h = 0; h < 16; ++h) EXPECT_TRUE(t.is_host(h));
  for (NodeId s = 16; s < 36; ++s) EXPECT_FALSE(t.is_host(s));
}

TEST(Topology, FatTreePortCounts) {
  const Topology t = make_fat_tree(4, cfg());
  for (NodeId h : t.hosts()) EXPECT_EQ(t.node(h).ports.size(), 1u);
  for (NodeId s : t.switches()) {
    // Edge/agg have k=4 ports; core have k=4 ports (one per pod).
    EXPECT_EQ(t.node(s).ports.size(), 4u) << t.node(s).name;
  }
}

TEST(Topology, FatTreeK6Shape) {
  const Topology t = make_fat_tree(6, cfg());
  EXPECT_EQ(t.num_hosts(), 54);       // k^3/4
  EXPECT_EQ(t.switches().size(), 45u); // 6*6 pod + 9 core
}

TEST(Topology, FatTreeRejectsOddK) {
  EXPECT_THROW(make_fat_tree(3, cfg()), std::invalid_argument);
  EXPECT_THROW(make_fat_tree(0, cfg()), std::invalid_argument);
}

TEST(Topology, PeerSymmetry) {
  const Topology t = make_fat_tree(4, cfg());
  for (std::size_t n = 0; n < t.size(); ++n) {
    const auto& node = t.node(static_cast<NodeId>(n));
    for (std::size_t p = 0; p < node.ports.size(); ++p) {
      const PortRef peer = t.peer(static_cast<NodeId>(n), static_cast<PortId>(p));
      const PortRef back = t.peer(peer.node, peer.port);
      EXPECT_EQ(back.node, static_cast<NodeId>(n));
      EXPECT_EQ(back.port, static_cast<PortId>(p));
    }
  }
}

TEST(Topology, LinkParametersStored) {
  Topology t;
  const NodeId a = t.add_host("a");
  const NodeId b = t.add_switch("b");
  const auto [pa, pb] = t.link(a, b, 25.0, 3000);
  EXPECT_EQ(t.port(a, pa).gbps, 25.0);
  EXPECT_EQ(t.port(a, pa).delay, 3000);
  EXPECT_EQ(t.port(b, pb).peer, a);
}

TEST(Topology, SelfLinkRejected) {
  Topology t;
  const NodeId a = t.add_switch("a");
  EXPECT_THROW(t.link(a, a, 100.0, 1000), std::invalid_argument);
}

TEST(Topology, ChainShape) {
  const Topology t = make_chain(3, cfg(), 2);
  EXPECT_EQ(t.num_hosts(), 4);
  EXPECT_EQ(t.switches().size(), 3u);
}

TEST(Topology, StarShape) {
  const Topology t = make_star(5, cfg());
  EXPECT_EQ(t.num_hosts(), 5);
  ASSERT_EQ(t.switches().size(), 1u);
  EXPECT_EQ(t.node(t.switches()[0]).ports.size(), 5u);
}

TEST(Topology, LeafSpineShape) {
  const Topology t = make_leaf_spine(3, 2, 4, cfg());
  EXPECT_EQ(t.num_hosts(), 12);
  EXPECT_EQ(t.switches().size(), 5u);
}

TEST(FlowKey, EqualityAndHash) {
  const FlowKey a{1, 2, 10, 20};
  const FlowKey b{1, 2, 10, 20};
  const FlowKey c{1, 2, 10, 21};
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(a.hash(), b.hash());
  EXPECT_NE(a.hash(), c.hash());
}

TEST(FlowKey, Validity) {
  EXPECT_FALSE(FlowKey{}.valid());
  EXPECT_TRUE((FlowKey{0, 1, 5, 6}).valid());
}

TEST(PortRef, OrderingAndHash) {
  const PortRef a{1, 2}, b{1, 3}, c{2, 0};
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  EXPECT_NE(PortRefHash{}(a), PortRefHash{}(b));
  EXPECT_FALSE(PortRef{}.valid());
  EXPECT_TRUE(a.valid());
}

}  // namespace
}  // namespace vedr::net
