#include "net/packet_pool.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <thread>
#include <vector>

#include "sim/shard.h"

namespace vedr::net {
namespace {

Packet data_packet(std::uint32_t seq) {
  Packet p;
  p.type = PacketType::kData;
  p.seq = seq;
  p.size = 1024;
  return p;
}

TEST(PacketPool, AcquireReleaseReusesSlots) {
  PacketPool pool;
  const PacketRef a = pool.acquire(data_packet(1));
  const PacketRef b = pool.acquire(data_packet(2));
  EXPECT_NE(a, b);
  EXPECT_EQ(pool.at(a).seq, 1u);
  EXPECT_EQ(pool.at(b).seq, 2u);
  EXPECT_EQ(pool.in_use(), 2u);

  pool.release(a);
  EXPECT_EQ(pool.in_use(), 1u);
  // LIFO free list: the slot just released is the next one out.
  const PacketRef c = pool.acquire(data_packet(3));
  EXPECT_EQ(c, a);
  EXPECT_EQ(pool.at(c).seq, 3u);
}

TEST(PacketPool, ReferencesSurviveGrowth) {
  // The original slab invalidated at() references whenever the backing
  // vector grew; the chunked pool must not. Pin a reference, force several
  // chunk allocations, and check the pinned slot is untouched.
  PacketPool pool;
  const PacketRef first = pool.acquire(data_packet(7));
  Packet* pinned = &pool.at(first);

  std::vector<PacketRef> refs;
  for (std::uint32_t i = 0; i < 4096; ++i) refs.push_back(pool.acquire(data_packet(i)));

  EXPECT_EQ(&pool.at(first), pinned);
  EXPECT_EQ(pinned->seq, 7u);
  EXPECT_GE(pool.capacity(), 4097u);
  for (const PacketRef r : refs) pool.release(r);
}

TEST(PacketPool, SingleShardReleaseIsAlwaysLocal) {
  PacketPool pool(1);
  const PacketRef a = pool.acquire(data_packet(0));
  EXPECT_EQ(pool.owner_of(a), 0);
  pool.release(a);
  EXPECT_EQ(pool.in_use(), 0u);
  // flush/drain are no-ops but must be callable (the serial engine never
  // calls them; the sharded engine with one domain may).
  pool.flush_returns(0);
  pool.drain_returns(0);
}

TEST(PacketPool, ChunksAreOwnedByTheAcquiringShard) {
  PacketPool pool(3);
  const PacketRef a = pool.acquire(data_packet(0));  // domain 0
  PacketRef b;
  {
    sim::ShardScope scope(2);
    b = pool.acquire(data_packet(1));
  }
  EXPECT_EQ(pool.owner_of(a), 0);
  EXPECT_EQ(pool.owner_of(b), 2);
}

TEST(PacketPool, CrossShardReturnWaitsForFlushAndDrain) {
  PacketPool pool(2);
  const PacketRef ref = pool.acquire(data_packet(9));  // owned by shard 0
  EXPECT_EQ(pool.in_use(), 1u);

  {
    // Shard 1 releases a slot it does not own: the slot is batched, not
    // freed — but it is no longer "in use" from the pool's accounting.
    sim::ShardScope scope(1);
    pool.release(ref);
  }
  EXPECT_EQ(pool.in_use(), 0u);

  // Until the batch is flushed and drained, shard 0's free list has not
  // recovered the slot: a fresh acquire must come from a new slot.
  const PacketRef other = pool.acquire(data_packet(10));
  EXPECT_NE(other, ref);
  pool.release(other);

  pool.flush_returns(1);
  pool.drain_returns(0);
  // Drained returns append to the owner's free list; LIFO gives it back
  // first.
  const PacketRef again = pool.acquire(data_packet(11));
  EXPECT_EQ(again, ref);
  pool.release(again);
}

TEST(PacketPool, ThreadedHandoffRoundTrip) {
  // The engine's real shape: the owner thread acquires and hands refs to a
  // peer shard, the peer releases them during its window and flushes at the
  // boundary, the owner drains at its next boundary. Run enough slots to
  // overflow the 1024-entry SPSC ring so the mutex spill path is exercised
  // under TSan as well.
  constexpr std::uint32_t kSlots = 3000;
  PacketPool pool(2);

  std::vector<PacketRef> handed;
  handed.reserve(kSlots);
  for (std::uint32_t i = 0; i < kSlots; ++i) handed.push_back(pool.acquire(data_packet(i)));
  EXPECT_EQ(pool.in_use(), kSlots);

  std::thread peer([&pool, &handed] {
    sim::ShardScope scope(1);
    for (const PacketRef r : handed) pool.release(r);
    pool.flush_returns(1);
  });
  peer.join();

  pool.drain_returns(0);
  EXPECT_EQ(pool.in_use(), 0u);

  // Every slot is recyclable exactly once: reacquiring kSlots packets must
  // not grow the pool.
  const std::size_t cap = pool.capacity();
  std::set<PacketRef> seen;
  for (std::uint32_t i = 0; i < kSlots; ++i) {
    const PacketRef r = pool.acquire(data_packet(i));
    EXPECT_TRUE(seen.insert(r).second) << "slot recycled twice";
  }
  EXPECT_EQ(pool.capacity(), cap);
}

}  // namespace
}  // namespace vedr::net
