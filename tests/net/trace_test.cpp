#include "net/trace.h"

#include <gtest/gtest.h>

#include "net/host.h"
#include "net/network.h"
#include "sim/simulator.h"

namespace vedr::net {
namespace {

TEST(Tracer, RecordsPacketJourneyAcrossFabric) {
  sim::Simulator sim;
  NetConfig cfg;
  Network net(sim, make_fat_tree(4, cfg), cfg);
  PacketTracer tracer;
  net.set_tracer(&tracer);

  const FlowKey key{0, 15, 10, 20};  // cross-pod: 6 links
  net.host(15).expect_flow(key, 4 * 4096);
  net.host(0).start_flow(key, 4 * 4096);
  sim.run();

  // Packet 0 journey: host tx, then enqueue+dequeue at each of 5 switches,
  // then host rx.
  const auto journey = tracer.journey(key, 0);
  ASSERT_FALSE(journey.empty());
  EXPECT_EQ(journey.front().kind, TraceEvent::Kind::kHostTx);
  EXPECT_EQ(journey.front().node, 0);
  EXPECT_EQ(journey.back().kind, TraceEvent::Kind::kHostRx);
  EXPECT_EQ(journey.back().node, 15);
  int enq = 0, deq = 0;
  for (const auto& ev : journey) {
    if (ev.kind == TraceEvent::Kind::kSwitchEnqueue) ++enq;
    if (ev.kind == TraceEvent::Kind::kSwitchDequeue) ++deq;
  }
  EXPECT_EQ(enq, 5);
  EXPECT_EQ(deq, 5);
  // Time strictly non-decreasing along the journey.
  for (std::size_t i = 1; i < journey.size(); ++i)
    EXPECT_GE(journey[i].time, journey[i - 1].time);
}

TEST(Tracer, FlowFilterExcludesOthers) {
  sim::Simulator sim;
  NetConfig cfg;
  Network net(sim, make_star(4, cfg), cfg);
  PacketTracer tracer;
  const FlowKey watched{0, 3, 10, 20};
  const FlowKey other{1, 3, 11, 21};
  tracer.filter({watched});
  net.set_tracer(&tracer);

  net.host(3).expect_flow(watched, 4096);
  net.host(3).expect_flow(other, 4096);
  net.host(0).start_flow(watched, 4096);
  net.host(1).start_flow(other, 4096);
  sim.run();

  EXPECT_FALSE(tracer.events().empty());
  for (const auto& ev : tracer.events()) EXPECT_EQ(ev.flow, watched);
}

TEST(Tracer, DataOnlySkipsAcks) {
  sim::Simulator sim;
  NetConfig cfg;
  Network net(sim, make_star(3, cfg), cfg);
  PacketTracer tracer;
  tracer.data_only(true);
  net.set_tracer(&tracer);

  const FlowKey key{0, 2, 10, 20};
  net.host(2).expect_flow(key, 4 * 4096);
  net.host(0).start_flow(key, 4 * 4096);
  sim.run();
  for (const auto& ev : tracer.events()) EXPECT_EQ(ev.pkt_type, PacketType::kData);
}

TEST(Tracer, BoundedCapacityEvicts) {
  PacketTracer tracer(4);
  for (std::uint32_t i = 0; i < 10; ++i)
    tracer.record(TraceEvent{TraceEvent::Kind::kHostTx, static_cast<Tick>(i), 0, 0,
                             PacketType::kData, FlowKey{0, 1, 2, 3}, i, 64});
  EXPECT_EQ(tracer.events().size(), 4u);
  EXPECT_EQ(tracer.dropped_events(), 6u);
  EXPECT_EQ(tracer.events().front().seq, 6u);  // oldest evicted
  tracer.clear();
  EXPECT_TRUE(tracer.events().empty());
  EXPECT_EQ(tracer.dropped_events(), 0u);
}

TEST(Tracer, DumpIsTabSeparated) {
  PacketTracer tracer;
  tracer.record(TraceEvent{TraceEvent::Kind::kDrop, 42, 5, 1, PacketType::kData,
                           FlowKey{0, 1, 2, 3}, 7, 4096});
  const std::string dump = tracer.dump();
  EXPECT_NE(dump.find("drop"), std::string::npos);
  EXPECT_NE(dump.find("42\t"), std::string::npos);
  EXPECT_NE(dump.find("# time"), std::string::npos);
}

TEST(Tracer, DetachedCostsNothing) {
  sim::Simulator sim;
  NetConfig cfg;
  Network net(sim, make_star(3, cfg), cfg);
  EXPECT_EQ(net.tracer(), nullptr);
  const FlowKey key{0, 2, 10, 20};
  net.host(2).expect_flow(key, 4096);
  net.host(0).start_flow(key, 4096);
  sim.run();  // must not crash with no tracer attached
}

}  // namespace
}  // namespace vedr::net
