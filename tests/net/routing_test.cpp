#include "net/routing.h"

#include <gtest/gtest.h>

#include <tuple>

namespace vedr::net {
namespace {

NetConfig cfg() { return NetConfig{}; }

TEST(Routing, AllHostPairsReachableOnFatTree) {
  const Topology t = make_fat_tree(4, cfg());
  const RoutingTable rt = RoutingTable::shortest_paths(t);
  for (NodeId src : t.hosts()) {
    for (NodeId dst : t.hosts()) {
      if (src == dst) continue;
      const FlowKey f{src, dst, 1, 2};
      const auto path = rt.path_of(t, f);
      ASSERT_GE(path.size(), 2u);
      EXPECT_EQ(path.front(), src);
      EXPECT_EQ(path.back(), dst) << "unreachable " << f.str();
    }
  }
}

TEST(Routing, FatTreeHopCounts) {
  const Topology t = make_fat_tree(4, cfg());
  const RoutingTable rt = RoutingTable::shortest_paths(t);
  // Same edge switch: host-edge-host = 2 links.
  EXPECT_EQ(rt.hop_count(t, FlowKey{0, 1, 1, 1}), 2);
  // Same pod, different edge: host-edge-agg-edge-host = 4 links.
  EXPECT_EQ(rt.hop_count(t, FlowKey{0, 2, 1, 1}), 4);
  // Cross pod: 6 links.
  EXPECT_EQ(rt.hop_count(t, FlowKey{0, 15, 1, 1}), 6);
}

TEST(Routing, EcmpSelectionIsDeterministic) {
  const Topology t = make_fat_tree(4, cfg());
  const RoutingTable rt = RoutingTable::shortest_paths(t);
  const FlowKey f{0, 15, 7, 8};
  const NodeId edge = t.peer(0, 0).node;
  const PortId first = rt.select(edge, f);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rt.select(edge, f), first);
}

TEST(Routing, EcmpSpreadsAcrossCandidates) {
  const Topology t = make_fat_tree(4, cfg());
  const RoutingTable rt = RoutingTable::shortest_paths(t);
  const NodeId edge = t.peer(0, 0).node;
  ASSERT_EQ(rt.candidates(edge, 15).size(), 2u);  // two aggs per pod
  // Across many flow keys both uplinks should be used.
  bool used[2] = {false, false};
  const auto& cands = rt.candidates(edge, 15);
  for (std::uint16_t sp = 0; sp < 64; ++sp) {
    const PortId p = rt.select(edge, FlowKey{0, 15, sp, 9});
    used[p == cands[0] ? 0 : 1] = true;
  }
  EXPECT_TRUE(used[0]);
  EXPECT_TRUE(used[1]);
}

TEST(Routing, CandidatesNeverPointAtWrongHost) {
  const Topology t = make_fat_tree(4, cfg());
  const RoutingTable rt = RoutingTable::shortest_paths(t);
  for (NodeId sw : t.switches()) {
    for (NodeId dst : t.hosts()) {
      for (PortId p : rt.candidates(sw, dst)) {
        const PortRef peer = t.peer(sw, p);
        if (t.is_host(peer.node)) {
          EXPECT_EQ(peer.node, dst);
        }
      }
    }
  }
}

TEST(Routing, PathsGetStrictlyCloser) {
  const Topology t = make_fat_tree(4, cfg());
  const RoutingTable rt = RoutingTable::shortest_paths(t);
  // A shortest-path route can never revisit a node.
  for (NodeId src : {0, 3, 7}) {
    for (NodeId dst : {12, 15}) {
      const auto path = rt.path_of(t, FlowKey{src, dst, 3, 4});
      std::set<NodeId> seen(path.begin(), path.end());
      EXPECT_EQ(seen.size(), path.size());
    }
  }
}

TEST(Routing, OverrideRouteRedirects) {
  const Topology t = make_chain(2, cfg());
  RoutingTable rt = RoutingTable::shortest_paths(t);
  const NodeId s0 = t.switches()[0];
  const FlowKey f{0, 1, 1, 1};
  const PortId orig = rt.select(s0, f);
  // Redirect to a different port (the one back toward host 0).
  PortId other = kInvalidPort;
  for (std::size_t p = 0; p < t.node(s0).ports.size(); ++p)
    if (static_cast<PortId>(p) != orig) other = static_cast<PortId>(p);
  rt.override_route(s0, 1, {other});
  EXPECT_EQ(rt.select(s0, f), other);
}

TEST(Routing, UnreachableThrows) {
  Topology t;
  t.add_host("a");
  t.add_host("b");  // no links at all
  const RoutingTable rt = RoutingTable::shortest_paths(t);
  EXPECT_THROW(rt.candidates(0, 1), std::runtime_error);
}

TEST(Routing, PortPathMatchesNodePath) {
  const Topology t = make_fat_tree(4, cfg());
  const RoutingTable rt = RoutingTable::shortest_paths(t);
  const FlowKey f{2, 13, 5, 6};
  const auto nodes = rt.path_of(t, f);
  const auto ports = rt.port_path_of(t, f);
  ASSERT_EQ(ports.size(), nodes.size() - 1);
  for (std::size_t i = 0; i < ports.size(); ++i) {
    EXPECT_EQ(ports[i].node, nodes[i]);
    EXPECT_EQ(t.peer(ports[i].node, ports[i].port).node, nodes[i + 1]);
  }
}

// Property sweep: reachability holds across leaf-spine shapes.
class LeafSpineReachability : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(LeafSpineReachability, AllPairsRoute) {
  const auto [leaves, spines, hosts_per_leaf] = GetParam();
  const Topology t = make_leaf_spine(leaves, spines, hosts_per_leaf, cfg());
  const RoutingTable rt = RoutingTable::shortest_paths(t);
  for (NodeId src : t.hosts()) {
    for (NodeId dst : t.hosts()) {
      if (src == dst) continue;
      const auto path = rt.path_of(t, FlowKey{src, dst, 9, 9});
      EXPECT_EQ(path.back(), dst);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, LeafSpineReachability,
                         ::testing::Values(std::make_tuple(2, 1, 2), std::make_tuple(3, 2, 3),
                                           std::make_tuple(4, 4, 2), std::make_tuple(6, 3, 4)));

}  // namespace
}  // namespace vedr::net
