#include "net/dcqcn.h"

#include <gtest/gtest.h>

#include "sim/simulator.h"

namespace vedr::net {
namespace {

DcqcnParams params() {
  DcqcnParams p;
  p.line_rate_gbps = 100.0;
  return p;
}

TEST(Dcqcn, StartsAtLineRate) {
  sim::Simulator sim;
  DcqcnFlow f(sim, params());
  EXPECT_DOUBLE_EQ(f.rate_gbps(), 100.0);
  EXPECT_TRUE(f.at_line_rate());
}

TEST(Dcqcn, FirstCnpCutsAboutHalf) {
  sim::Simulator sim;
  DcqcnFlow f(sim, params());
  f.on_cnp();
  // alpha starts at 1 -> after update alpha ~ 1, cut by alpha/2 ~ 0.5.
  EXPECT_LT(f.rate_gbps(), 60.0);
  EXPECT_GT(f.rate_gbps(), 40.0);
}

TEST(Dcqcn, RepeatedCnpsApproachMinRate) {
  sim::Simulator sim;
  DcqcnFlow f(sim, params());
  for (int i = 0; i < 40; ++i) f.on_cnp();
  EXPECT_LE(f.rate_gbps(), 2.0);
  EXPECT_GE(f.rate_gbps(), params().min_rate_gbps);
}

TEST(Dcqcn, RecoversToLineRateAfterQuiet) {
  sim::Simulator sim;
  DcqcnFlow f(sim, params());
  f.on_cnp();
  f.on_cnp();
  ASSERT_LT(f.rate_gbps(), 100.0);
  // No further CNPs: timers drive fast recovery then additive increase.
  sim.run(sim.now() + 50 * sim::kMillisecond);
  EXPECT_TRUE(f.at_line_rate());
}

TEST(Dcqcn, FastRecoveryHalvesTowardTarget) {
  sim::Simulator sim;
  DcqcnFlow f(sim, params());
  f.on_cnp();
  const double after_cut = f.rate_gbps();
  // One increase-timer period: rate = (rate + target)/2, target was pre-cut rate.
  sim.run(sim.now() + 60 * sim::kMicrosecond);
  EXPECT_GT(f.rate_gbps(), after_cut);
}

TEST(Dcqcn, AlphaDecaysWithoutCnp) {
  sim::Simulator sim;
  DcqcnFlow f(sim, params());
  f.on_cnp();
  const double a0 = f.alpha();
  sim.run(sim.now() + 10 * 55 * sim::kMicrosecond);
  EXPECT_LT(f.alpha(), a0);
}

TEST(Dcqcn, LaterCnpsCutLessWhenAlphaDecayed) {
  sim::Simulator sim;
  DcqcnFlow f(sim, params());
  f.on_cnp();
  sim.run(sim.now() + 30 * sim::kMillisecond);  // recover + decay alpha
  ASSERT_TRUE(f.at_line_rate());
  f.on_cnp();
  // Decayed alpha means a gentler cut than the initial ~50%.
  EXPECT_GT(f.rate_gbps(), 60.0);
}

TEST(Dcqcn, ByteCounterTriggersIncrease) {
  sim::Simulator sim;
  DcqcnParams p = params();
  p.byte_counter = 1024 * 1024;
  DcqcnFlow f(sim, p);
  f.on_cnp();
  const double cut = f.rate_gbps();
  f.on_bytes_sent(2 * 1024 * 1024);  // crosses the byte counter
  EXPECT_GT(f.rate_gbps(), cut);
}

TEST(Dcqcn, DeactivateFreezesState) {
  sim::Simulator sim;
  DcqcnFlow f(sim, params());
  f.on_cnp();
  f.deactivate();
  const double r = f.rate_gbps();
  f.on_cnp();
  EXPECT_DOUBLE_EQ(f.rate_gbps(), r);
  sim.run(sim.now() + 10 * sim::kMillisecond);
  EXPECT_DOUBLE_EQ(f.rate_gbps(), r);
}

TEST(Dcqcn, RateNeverExceedsLine) {
  sim::Simulator sim;
  DcqcnFlow f(sim, params());
  f.on_cnp();
  for (int i = 0; i < 100; ++i) {
    sim.run(sim.now() + 55 * sim::kMicrosecond);
    EXPECT_LE(f.rate_gbps(), 100.0 + 1e-9);
  }
}

}  // namespace
}  // namespace vedr::net
