// Proves the runtime invariant checks actually fire: each test corrupts
// internal state through a test-only backdoor (or passes illegal parameters)
// and asserts the corresponding VEDR_CHECK trips. ScopedThrowOnCheckFailure
// converts the failure into an exception so no death tests are needed (death
// tests interact poorly with the sanitizer runtimes).
#include <gtest/gtest.h>

#include "common/check.h"
#include "net/dcqcn.h"
#include "net/host.h"
#include "net/network.h"
#include "net/switch.h"
#include "sim/simulator.h"

namespace vedr::net {
namespace {

using common::CheckFailure;
using common::InvariantAuditor;
using common::ScopedThrowOnCheckFailure;

struct StarFixture {
  sim::Simulator sim;
  Topology topo;
  Network net;

  explicit StarFixture(int hosts = 3, NetConfig cfg = NetConfig{})
      : topo(make_star(hosts, cfg)), net(sim, topo, cfg) {}

  NodeId sw() const { return topo.switches()[0]; }
};

/// Runs one short flow so the switch has live queue/telemetry state.
void run_some_traffic(StarFixture& f) {
  const FlowKey key{0, 1, 7, 9};
  f.net.host(1).expect_flow(key, 64 * 1024);
  f.net.host(0).start_flow(key, 64 * 1024);
  f.sim.run(200 * sim::kMicrosecond);
}

TEST(SwitchInvariants, AuditPassesOnHealthySwitch) {
  StarFixture f;
  run_some_traffic(f);
  ScopedThrowOnCheckFailure guard;
  EXPECT_NO_THROW(f.net.switch_at(f.sw()).audit_invariants());
}

TEST(SwitchInvariants, CorruptedEgressAccountingIsCaught) {
  StarFixture f;
  run_some_traffic(f);
  Switch& sw = f.net.switch_at(f.sw());
  SwitchTestPeer::corrupt_egress_bytes(sw, /*port=*/1, Priority::kData, /*delta=*/100);
  ScopedThrowOnCheckFailure guard;
  EXPECT_THROW(sw.audit_invariants(), CheckFailure);
}

TEST(SwitchInvariants, NegativeEgressAccountingIsCaught) {
  StarFixture f;
  run_some_traffic(f);
  Switch& sw = f.net.switch_at(f.sw());
  SwitchTestPeer::corrupt_egress_bytes(sw, /*port=*/1, Priority::kData, /*delta=*/-4096);
  ScopedThrowOnCheckFailure guard;
  EXPECT_THROW(sw.audit_invariants(), CheckFailure);
}

TEST(SwitchInvariants, CorruptedIngressPfcCounterIsCaught) {
  StarFixture f;
  run_some_traffic(f);
  Switch& sw = f.net.switch_at(f.sw());
  SwitchTestPeer::corrupt_ingress_bytes(sw, /*port=*/0, /*delta=*/1 << 20);
  ScopedThrowOnCheckFailure guard;
  EXPECT_THROW(sw.audit_invariants(), CheckFailure);
}

TEST(SwitchInvariants, InvertedPfcHysteresisRejectedAtConstruction) {
  NetConfig cfg;
  cfg.pfc_xoff_bytes = 100 * 1024;
  cfg.pfc_xon_bytes = 200 * 1024;  // XON above XOFF: pause would never clear
  ScopedThrowOnCheckFailure guard;
  EXPECT_THROW(StarFixture f(3, cfg), CheckFailure);
}

TEST(SwitchInvariants, InvertedEcnThresholdsRejectedAtConstruction) {
  NetConfig cfg;
  cfg.ecn_kmin_bytes = 400 * 1024;
  cfg.ecn_kmax_bytes = 100 * 1024;
  ScopedThrowOnCheckFailure guard;
  EXPECT_THROW(StarFixture f(3, cfg), CheckFailure);
}

TEST(SwitchInvariants, AuditorScopeRunsAuditsDuringTraffic) {
  InvariantAuditor::Scope scope;
  const std::uint64_t before = InvariantAuditor::audits_run();
  StarFixture f;
  run_some_traffic(f);
  EXPECT_GT(InvariantAuditor::audits_run(), before)
      << "enqueue path must run deep audits while the auditor is enabled";
}

DcqcnParams dcqcn_params() {
  DcqcnParams p;
  p.line_rate_gbps = 100.0;
  return p;
}

TEST(DcqcnInvariants, AlphaAboveOneIsCaught) {
  sim::Simulator sim;
  DcqcnFlow f(sim, dcqcn_params());
  DcqcnTestPeer::set_alpha(f, 1.5);
  ScopedThrowOnCheckFailure guard;
  EXPECT_THROW(f.on_cnp(), CheckFailure);
}

TEST(DcqcnInvariants, NegativeAlphaIsCaught) {
  sim::Simulator sim;
  DcqcnFlow f(sim, dcqcn_params());
  DcqcnTestPeer::set_alpha(f, -0.25);
  ScopedThrowOnCheckFailure guard;
  EXPECT_THROW(f.on_cnp(), CheckFailure);
}

TEST(DcqcnInvariants, RateBelowMinIsCaught) {
  sim::Simulator sim;
  DcqcnFlow f(sim, dcqcn_params());
  DcqcnTestPeer::set_rate(f, 0.01);  // below min_rate_gbps = 1.0
  ScopedThrowOnCheckFailure guard;
  EXPECT_THROW(f.on_cnp(), CheckFailure);
}

TEST(DcqcnInvariants, IllegalParamsRejectedAtConstruction) {
  sim::Simulator sim;
  ScopedThrowOnCheckFailure guard;
  {
    DcqcnParams p = dcqcn_params();
    p.min_rate_gbps = 0;
    EXPECT_THROW(DcqcnFlow f(sim, p), CheckFailure);
  }
  {
    DcqcnParams p = dcqcn_params();
    p.min_rate_gbps = 200.0;  // min above line rate
    EXPECT_THROW(DcqcnFlow f(sim, p), CheckFailure);
  }
  {
    DcqcnParams p = dcqcn_params();
    p.g = 1.5;  // EWMA gain outside (0, 1]
    EXPECT_THROW(DcqcnFlow f(sim, p), CheckFailure);
  }
}

}  // namespace
}  // namespace vedr::net
