#include "net/network.h"

#include <gtest/gtest.h>

#include "net/host.h"
#include "net/switch.h"
#include "sim/simulator.h"

namespace vedr::net {
namespace {

TEST(Network, ConstructsDevicesMatchingTopology) {
  sim::Simulator sim;
  Network net(sim, make_fat_tree(4, NetConfig{}));
  EXPECT_EQ(net.hosts().size(), 16u);
  EXPECT_EQ(net.switches().size(), 20u);
  EXPECT_NO_THROW(net.host(0));
  EXPECT_NO_THROW(net.switch_at(16));
  EXPECT_THROW(net.host(16), std::invalid_argument);
  EXPECT_THROW(net.switch_at(0), std::invalid_argument);
}

TEST(Network, BaseRttScalesWithHops) {
  sim::Simulator sim;
  Network net(sim, make_fat_tree(4, NetConfig{}));
  const Tick same_edge = net.base_rtt(FlowKey{0, 1, 1, 1});    // 2 links
  const Tick same_pod = net.base_rtt(FlowKey{0, 2, 1, 1});     // 4 links
  const Tick cross_pod = net.base_rtt(FlowKey{0, 15, 1, 1});   // 6 links
  EXPECT_LT(same_edge, same_pod);
  EXPECT_LT(same_pod, cross_pod);
  // 2 links: fwd 2*(2us + 0.33us) + rev 2*(2us + 5ns) ~ 8.7us.
  EXPECT_GT(same_edge, 8 * sim::kMicrosecond);
  EXPECT_LT(same_edge, 10 * sim::kMicrosecond);
}

TEST(Network, IdealFctMonotonicInSize) {
  sim::Simulator sim;
  Network net(sim, make_fat_tree(4, NetConfig{}));
  const FlowKey f{0, 15, 1, 1};
  Tick prev = 0;
  for (std::int64_t b = 1 << 12; b <= 1 << 24; b <<= 2) {
    const Tick fct = net.ideal_fct(f, b);
    EXPECT_GT(fct, prev);
    prev = fct;
  }
}

TEST(Network, IdealFctDominatedBySerializationForLargeFlows) {
  sim::Simulator sim;
  Network net(sim, make_fat_tree(4, NetConfig{}));
  const FlowKey f{0, 15, 1, 1};
  const std::int64_t bytes = 100 * 1024 * 1024;
  const Tick fct = net.ideal_fct(f, bytes);
  const Tick serialization = sim::transmission_delay(bytes, 100.0);
  EXPECT_GT(fct, serialization);
  EXPECT_LT(fct, serialization + serialization / 4);
}

TEST(Network, DeliverHonorsPropagationDelay) {
  sim::Simulator sim;
  NetConfig cfg;
  cfg.link_delay = 7 * sim::kMicrosecond;
  Network net(sim, make_chain(1, cfg), cfg);
  // Host 0's uplink: deliver a PFC frame and observe the host pauses only
  // after the link delay.
  const NodeId edge = net.topology().peer(0, 0).node;
  const PortId port = net.topology().peer(0, 0).port;
  net.deliver_pfc(edge, port, Priority::kData, true);
  sim.run(6 * sim::kMicrosecond);
  EXPECT_FALSE(net.host(0).data_paused());
  sim.run();
  EXPECT_TRUE(net.host(0).data_paused());
}

TEST(Network, StatsSharedAcrossDevices) {
  sim::Simulator sim;
  Network net(sim, make_star(4, NetConfig{}));
  net.stats().add_counter("test", 3);
  EXPECT_EQ(net.stats().counter("test"), 3);
}

TEST(Packet, ReverseSwapsEndpoints) {
  const FlowKey f{3, 9, 100, 200};
  const FlowKey r = reverse(f);
  EXPECT_EQ(r.src, 9);
  EXPECT_EQ(r.dst, 3);
  EXPECT_EQ(r.sport, 200);
  EXPECT_EQ(r.dport, 100);
  EXPECT_EQ(reverse(r), f);
}

TEST(Packet, MakeDataDefaults) {
  const Packet p = make_data(FlowKey{1, 2, 3, 4}, 7, 4160, 64);
  EXPECT_EQ(p.type, PacketType::kData);
  EXPECT_EQ(p.prio, Priority::kData);
  EXPECT_TRUE(p.ecn_capable);
  EXPECT_FALSE(p.ecn_ce);
  EXPECT_EQ(p.seq, 7u);
  EXPECT_EQ(p.ttl, 64);
}

}  // namespace
}  // namespace vedr::net
