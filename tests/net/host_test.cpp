#include "net/host.h"

#include <gtest/gtest.h>

#include "net/network.h"
#include "net/switch.h"
#include "sim/simulator.h"

namespace vedr::net {
namespace {

struct Fixture {
  sim::Simulator sim;
  NetConfig cfg;
  Topology topo;
  Network net;

  explicit Fixture(int switches = 1)
      : topo(make_chain(switches, NetConfig{})), net(sim, topo, NetConfig{}) {}
};

TEST(Host, FlowCompletionTimeMatchesAnalytic) {
  Fixture f;
  const FlowKey key{0, 1, 10, 20};
  const std::int64_t bytes = 1024 * 1024;
  sim::Tick done = sim::kNever;
  f.net.host(1).expect_flow(key, bytes);
  f.net.host(0).start_flow(key, bytes, [&](const FlowKey&, sim::Tick t) { done = t; });
  f.sim.run();
  ASSERT_NE(done, sim::kNever);
  const sim::Tick ideal = f.net.ideal_fct(key, bytes);
  EXPECT_NEAR(static_cast<double>(done), static_cast<double>(ideal),
              static_cast<double>(ideal) * 0.25);
}

TEST(Host, ReceiverSeesExactByteCount) {
  Fixture f;
  const FlowKey key{0, 1, 10, 20};
  // A size that is not a multiple of the MTU exercises the runt last packet.
  const std::int64_t bytes = 3 * 4096 + 1234;
  sim::Tick recv_done = sim::kNever;
  f.net.host(1).expect_flow(key, bytes, [&](const FlowKey&, sim::Tick t) { recv_done = t; });
  f.net.host(0).start_flow(key, bytes);
  f.sim.run();
  EXPECT_NE(recv_done, sim::kNever);
}

TEST(Host, TwoFlowsShareTheNicFairly) {
  Fixture f;
  const FlowKey k1{0, 1, 10, 20};
  const FlowKey k2{0, 1, 11, 21};
  const std::int64_t bytes = 2 * 1024 * 1024;
  sim::Tick d1 = sim::kNever, d2 = sim::kNever;
  f.net.host(1).expect_flow(k1, bytes);
  f.net.host(1).expect_flow(k2, bytes);
  f.net.host(0).start_flow(k1, bytes, [&](const FlowKey&, sim::Tick t) { d1 = t; });
  f.net.host(0).start_flow(k2, bytes, [&](const FlowKey&, sim::Tick t) { d2 = t; });
  f.sim.run();
  ASSERT_NE(d1, sim::kNever);
  ASSERT_NE(d2, sim::kNever);
  // Round-robin arbitration: both finish within ~20% of each other.
  const double ratio = static_cast<double>(d1) / static_cast<double>(d2);
  EXPECT_GT(ratio, 0.8);
  EXPECT_LT(ratio, 1.25);
}

TEST(Host, RttListenerFiresPerAck) {
  Fixture f;
  const FlowKey key{0, 1, 10, 20};
  const std::int64_t bytes = 10 * 4096;  // 10 packets
  int samples = 0;
  sim::Tick max_rtt = 0;
  f.net.host(0).set_rtt_listener([&](const FlowKey& fk, sim::Tick rtt, std::uint32_t) {
    EXPECT_EQ(fk, key);
    ++samples;
    max_rtt = std::max(max_rtt, rtt);
  });
  f.net.host(1).expect_flow(key, bytes);
  f.net.host(0).start_flow(key, bytes);
  f.sim.run();
  EXPECT_EQ(samples, 10);
  EXPECT_GT(max_rtt, 2 * f.net.config().link_delay);
}

TEST(Host, DuplicateFlowRejected) {
  Fixture f;
  const FlowKey key{0, 1, 10, 20};
  f.net.host(0).start_flow(key, 4096);
  EXPECT_THROW(f.net.host(0).start_flow(key, 4096), std::invalid_argument);
}

TEST(Host, WrongSourceRejected) {
  Fixture f;
  EXPECT_THROW(f.net.host(0).start_flow(FlowKey{1, 0, 1, 1}, 4096), std::invalid_argument);
  EXPECT_THROW(f.net.host(0).expect_flow(FlowKey{0, 1, 1, 1}, 4096), std::invalid_argument);
}

TEST(Host, NonPositiveBytesRejected) {
  Fixture f;
  EXPECT_THROW(f.net.host(0).start_flow(FlowKey{0, 1, 1, 1}, 0), std::invalid_argument);
}

TEST(Host, ControlPacketsReachDestinationListener) {
  Fixture f;
  int polls = 0;
  f.net.host(1).set_control_listener([&](const Packet& p, sim::Tick) {
    if (p.type == PacketType::kNotification) ++polls;
  });
  Packet pkt;
  pkt.type = PacketType::kNotification;
  pkt.flow = FlowKey{0, 1, 77, 77};
  pkt.meta = NotifyInfo{0, 1, 2, 0};
  f.net.host(0).send_control(std::move(pkt));
  f.sim.run();
  EXPECT_EQ(polls, 1);
}

TEST(Host, PfcPauseStopsDataAndResumeRestarts) {
  Fixture f;
  const FlowKey key{0, 1, 10, 20};
  const std::int64_t bytes = 64 * 4096;
  sim::Tick done = sim::kNever;
  f.net.host(1).expect_flow(key, bytes);
  f.net.host(0).start_flow(key, bytes, [&](const FlowKey&, sim::Tick t) { done = t; });
  // After 10 us, pause host 0 for 1 ms, then resume.
  const NodeId edge = f.topo.peer(0, 0).node;
  const PortId edge_port_to_h0 = f.topo.peer(0, 0).port;
  f.sim.schedule_at(10 * sim::kMicrosecond, [&f, edge, edge_port_to_h0] {
    f.net.deliver_pfc(edge, edge_port_to_h0, Priority::kData, true);
  });
  f.sim.schedule_at(1 * sim::kMillisecond + 10 * sim::kMicrosecond,
                    [&f, edge, edge_port_to_h0] {
                      f.net.deliver_pfc(edge, edge_port_to_h0, Priority::kData, false);
                    });
  f.sim.run();
  ASSERT_NE(done, sim::kNever);
  // The pause must have delayed completion by roughly its duration.
  EXPECT_GT(done, 1 * sim::kMillisecond);
}

TEST(Host, FlowStateIntrospection) {
  Fixture f;
  const FlowKey key{0, 1, 10, 20};
  f.net.host(1).expect_flow(key, 8 * 4096);
  f.net.host(0).start_flow(key, 8 * 4096);
  EXPECT_TRUE(f.net.host(0).flow_active(key));
  EXPECT_EQ(f.net.host(0).active_send_flows(), 1);
  EXPECT_DOUBLE_EQ(f.net.host(0).flow_rate_gbps(key), 100.0);
  f.sim.run();
  EXPECT_FALSE(f.net.host(0).flow_active(key));
  EXPECT_EQ(f.net.host(0).bytes_in_flight(key), 0);
}

}  // namespace
}  // namespace vedr::net
