// Signature classification (§III-D2) over hand-built provenance graphs.
#include "core/signatures.h"

#include <gtest/gtest.h>

#include "net/topology.h"

namespace vedr::core {
namespace {

using telemetry::FlowEntry;
using telemetry::PauseCauseReport;
using telemetry::PortReport;
using telemetry::SwitchReport;
using telemetry::WaitEntry;

FlowKey cc(int i) { return FlowKey{i, 40, static_cast<std::uint16_t>(9000 + i), 1000}; }
FlowKey bg(int i) { return FlowKey{i, 41, static_cast<std::uint16_t>(100 + i), 200}; }

struct Fixture {
  // Chain: h0(0), h1(1), s0(2), s1(3); s0: port0->h0, port1->s1;
  // s1: port0->h1, port1->s0.
  net::Topology topo = net::make_chain(2, net::NetConfig{});
  ProvenanceGraph g{&topo};
  SignatureClassifier classifier{8.0};
  std::unordered_set<FlowKey, net::FlowKeyHash> cc_set{cc(0)};

  void add_port(PortRef p, std::vector<WaitEntry> waits, std::vector<FlowKey> flows,
                bool paused = false, std::int64_t qdepth = 10) {
    SwitchReport rep;
    rep.switch_id = p.node;
    PortReport pr;
    pr.port = p;
    pr.poll_time = 1000;
    pr.qdepth_pkts = qdepth;
    pr.currently_paused = paused;
    pr.waits = std::move(waits);
    for (const auto& f : flows) pr.flows.push_back(FlowEntry{f, 10, 40960, 0, 1000});
    rep.ports.push_back(pr);
    g.add_report(rep);
  }

  void add_cause(PortRef ingress, std::vector<std::pair<net::PortId, std::int64_t>> contribs,
                 bool injected = false) {
    SwitchReport rep;
    rep.switch_id = ingress.node;
    PauseCauseReport cause;
    cause.ingress_port = ingress;
    cause.time = 500;
    cause.injected = injected;
    cause.contributions = std::move(contribs);
    rep.causes.push_back(cause);
    g.add_report(rep);
  }

  std::vector<AnomalyFinding> classify() {
    g.finalize();
    return classifier.classify(g, cc_set, 2);
  }
};

TEST(Signatures, FlowContentionDetected) {
  Fixture f;
  f.add_port(PortRef{2, 1}, {WaitEntry{cc(0), bg(1), 50}}, {cc(0), bg(1)});
  const auto findings = f.classify();
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].type, AnomalyType::kFlowContention);
  ASSERT_EQ(findings[0].contending_flows.size(), 1u);
  EXPECT_EQ(findings[0].contending_flows[0], bg(1));
  EXPECT_EQ(findings[0].step, 2);
  EXPECT_EQ(findings[0].root_port, (PortRef{2, 1}));
}

TEST(Signatures, WeakPairWeightIsNoise) {
  Fixture f;
  f.add_port(PortRef{2, 1}, {WaitEntry{cc(0), bg(1), 3}}, {cc(0), bg(1)});
  EXPECT_TRUE(f.classify().empty());
}

TEST(Signatures, CcOnCcContentionNotReported) {
  Fixture f;
  f.cc_set.insert(cc(1));
  f.add_port(PortRef{2, 1}, {WaitEntry{cc(0), cc(1), 80}}, {cc(0), cc(1)});
  EXPECT_TRUE(f.classify().empty()) << "collective flows waiting on each other is not an anomaly";
}

TEST(Signatures, IncastAtHostFacingPort) {
  Fixture f;
  // s1 port 0 faces h1.
  f.add_port(PortRef{3, 0},
             {WaitEntry{cc(0), bg(1), 40}, WaitEntry{cc(0), bg(2), 30}},
             {cc(0), bg(1), bg(2)});
  const auto findings = f.classify();
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].type, AnomalyType::kIncast);
  EXPECT_EQ(findings[0].contending_flows.size(), 2u);
}

TEST(Signatures, BackpressureChainToTerminal) {
  Fixture f;
  // cc stalls at s0's egress (2,1), which is paused; s1 blames its egress
  // (3,0) where bg flows pile up.
  f.add_port(PortRef{2, 1}, {}, {cc(0)}, /*paused=*/true);
  f.add_port(PortRef{3, 0}, {WaitEntry{bg(1), bg(2), 99}}, {bg(1), bg(2)});
  f.add_cause(PortRef{3, 1}, {{0, 5000}});
  const auto findings = f.classify();
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].type, AnomalyType::kPfcBackpressure);
  EXPECT_EQ(findings[0].root_port, (PortRef{3, 0}));
  ASSERT_EQ(findings[0].pfc_chain.size(), 2u);
  EXPECT_EQ(findings[0].pfc_chain[0], (PortRef{2, 1}));
  EXPECT_EQ(findings[0].pfc_chain[1], (PortRef{3, 0}));
  // The culprit flows feeding the terminal are named.
  EXPECT_EQ(findings[0].contending_flows.size(), 2u);
}

TEST(Signatures, StormViaInjectedCauseOnChain) {
  Fixture f;
  f.add_port(PortRef{2, 1}, {}, {cc(0)}, /*paused=*/true);
  f.add_cause(PortRef{3, 1}, {}, /*injected=*/true);
  const auto findings = f.classify();
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].type, AnomalyType::kPfcStorm);
  EXPECT_EQ(findings[0].root_port, (PortRef{3, 1}));
}

TEST(Signatures, StormPreferredOverBackpressureOnSameChain) {
  Fixture f;
  // Both an injected cause and a congestion cause: the injected storm is
  // the root diagnosis for the chain it halts.
  f.add_port(PortRef{2, 1}, {}, {cc(0)}, /*paused=*/true);
  f.add_cause(PortRef{3, 1}, {{0, 5000}});
  f.add_cause(PortRef{3, 1}, {}, /*injected=*/true);
  f.add_port(PortRef{3, 0}, {}, {bg(1)});
  const auto findings = f.classify();
  bool storm = false;
  for (const auto& finding : findings)
    if (finding.type == AnomalyType::kPfcStorm) storm = true;
  EXPECT_TRUE(storm);
}

TEST(Signatures, DeadlockOnCyclicChain) {
  Fixture f;
  f.add_port(PortRef{2, 1}, {}, {cc(0)}, /*paused=*/true, 20);
  f.add_port(PortRef{3, 1}, {}, {cc(0)}, /*paused=*/true, 20);
  // s1 blames its egress 1 (back toward s0); s0 blames its egress 1 too:
  // (2,1) -> (3,1) -> (2,1) cycle.
  f.add_cause(PortRef{3, 1}, {{1, 1000}});
  f.add_cause(PortRef{2, 1}, {{1, 1000}});
  const auto findings = f.classify();
  bool deadlock = false;
  for (const auto& finding : findings)
    if (finding.type == AnomalyType::kPfcDeadlock) deadlock = true;
  EXPECT_TRUE(deadlock);
}

TEST(Signatures, NoCcInvolvementNoFinding) {
  Fixture f;
  // Background-only congestion: nothing to report for the collective.
  f.add_port(PortRef{2, 1}, {WaitEntry{bg(1), bg(2), 90}}, {bg(1), bg(2)});
  EXPECT_TRUE(f.classify().empty());
}

TEST(Signatures, EmptyGraphNoFindings) {
  Fixture f;
  EXPECT_TRUE(f.classify().empty());
}

TEST(Signatures, MultiplePortsAggregateIntoOneContentionFinding) {
  Fixture f;
  f.add_port(PortRef{2, 1}, {WaitEntry{cc(0), bg(1), 40}}, {cc(0), bg(1)});
  f.add_port(PortRef{3, 1}, {WaitEntry{cc(0), bg(2), 40}}, {cc(0), bg(2)});
  const auto findings = f.classify();
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].contending_flows.size(), 2u);
  EXPECT_EQ(findings[0].congested_ports.size(), 2u);
}

}  // namespace
}  // namespace vedr::core
