#include "core/intern.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "common/check.h"
#include "common/dense_map.h"
#include "net/types.h"

namespace vedr {
namespace {

using core::FlowIdSet;
using core::FlowInterner;
using core::Interner;
using core::PortInterner;
using net::FlowKey;
using net::PortRef;

FlowKey make_flow(int i) {
  FlowKey k;
  k.src = 10 + i;
  k.dst = 200 + i;
  k.sport = static_cast<std::uint16_t>(7000 + i);
  k.dport = 4791;
  return k;
}

TEST(Interner, IdsAreDenseAndFirstSeenOrdered) {
  FlowInterner in;
  for (int i = 0; i < 100; ++i) EXPECT_EQ(in.intern(make_flow(i)), static_cast<uint32_t>(i));
  EXPECT_EQ(in.size(), 100u);
}

TEST(Interner, ReInterningIsStable) {
  FlowInterner in;
  std::vector<std::uint32_t> first;
  for (int i = 0; i < 64; ++i) first.push_back(in.intern(make_flow(i)));
  // Growth/rehash between the two passes must not change assigned ids.
  for (int i = 63; i >= 0; --i) EXPECT_EQ(in.intern(make_flow(i)), first[static_cast<size_t>(i)]);
  EXPECT_EQ(in.size(), 64u);
}

TEST(Interner, KeyOfRoundTrips) {
  PortInterner in;
  std::vector<PortRef> ports;
  for (int n = 0; n < 8; ++n)
    for (int p = 0; p < 6; ++p) ports.push_back(PortRef{n, p});
  for (const PortRef& p : ports) {
    const std::uint32_t id = in.intern(p);
    EXPECT_EQ(in.key_of(id), p);
    EXPECT_EQ(in.find(p), id);
  }
}

TEST(Interner, FindNeverInserts) {
  FlowInterner in;
  EXPECT_EQ(in.find(make_flow(1)), FlowInterner::kNone);
  EXPECT_TRUE(in.empty());
  in.intern(make_flow(1));
  EXPECT_EQ(in.find(make_flow(1)), 0u);
  EXPECT_EQ(in.find(make_flow(2)), FlowInterner::kNone);
  EXPECT_EQ(in.size(), 1u);
}

// Every key hashes to the same bucket: the table must still resolve each key
// to its own id by full-key comparison, only with longer probe runs.
struct CollidingHash {
  std::size_t operator()(const PortRef&) const { return 42; }
};

TEST(Interner, SurvivesTotalHashCollision) {
  Interner<PortRef, CollidingHash> in;
  std::vector<PortRef> ports;
  for (int n = 0; n < 16; ++n)
    for (int p = 0; p < 4; ++p) ports.push_back(PortRef{n, p});
  for (std::size_t i = 0; i < ports.size(); ++i)
    EXPECT_EQ(in.intern(ports[i]), static_cast<std::uint32_t>(i));
  for (std::size_t i = 0; i < ports.size(); ++i) {
    EXPECT_EQ(in.find(ports[i]), static_cast<std::uint32_t>(i));
    EXPECT_EQ(in.key_of(static_cast<std::uint32_t>(i)), ports[i]);
  }
}

TEST(Interner, ReserveDoesNotDisturbExistingIds) {
  FlowInterner in;
  in.intern(make_flow(0));
  in.intern(make_flow(1));
  in.reserve(4096);
  EXPECT_EQ(in.find(make_flow(0)), 0u);
  EXPECT_EQ(in.find(make_flow(1)), 1u);
  EXPECT_EQ(in.intern(make_flow(2)), 2u);
}

TEST(FlowIdSet, ResolvesInternedAndFallsBackForUnseenKeys) {
  FlowInterner in;
  const FlowKey a = make_flow(0), b = make_flow(1), c = make_flow(2);
  in.intern(a);
  in.intern(b);
  std::unordered_set<FlowKey, net::FlowKeyHash> cc{a, c};  // c never interned
  FlowIdSet set;
  set.build(in, cc);
  EXPECT_TRUE(set.contains(in.find(a)));
  EXPECT_FALSE(set.contains(in.find(b)));
  EXPECT_TRUE(set.contains_key(c));
  EXPECT_FALSE(set.contains_key(b));
}

TEST(DenseMap64, InsertFindClearKeepsCapacity) {
  common::DenseMap64 m;
  for (std::uint64_t k = 0; k < 1000; ++k) m.insert_or_get(k, k * 3) = k * 3;
  EXPECT_EQ(m.size(), 1000u);
  for (std::uint64_t k = 0; k < 1000; ++k) {
    const std::uint64_t* v = m.find(k);
    ASSERT_NE(v, nullptr);
    EXPECT_EQ(*v, k * 3);
  }
  EXPECT_EQ(m.find(5000), nullptr);
  m.clear();
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.find(1), nullptr);
  // Fresh-insert detection idiom used throughout the diagnosis core.
  std::uint64_t& slot = m.insert_or_get(7, 99);
  EXPECT_EQ(slot, 99u);
}

TEST(DenseMap64, PackUnpackRoundTrips) {
  const std::uint64_t v = common::pack_u32_pair(0xdeadbeefu, 0x12345678u);
  EXPECT_EQ(common::unpack_hi(v), 0xdeadbeefu);
  EXPECT_EQ(common::unpack_lo(v), 0x12345678u);
}

}  // namespace
}  // namespace vedr
