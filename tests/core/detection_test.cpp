#include "core/detection.h"

#include <gtest/gtest.h>

namespace vedr::core {
namespace {

constexpr Tick kUs = sim::kMicrosecond;

StepTrigger armed(int budget, Tick threshold = 100 * kUs, Tick fct = 900 * kUs,
                  Tick floor = 10 * kUs, bool unrestricted = false) {
  StepTrigger t;
  t.begin_step(0, threshold, fct, budget, unrestricted, floor);
  return t;
}

TEST(StepTrigger, FiresOnlyAboveThreshold) {
  auto t = armed(3);
  EXPECT_FALSE(t.offer(99 * kUs, 0));
  EXPECT_FALSE(t.offer(100 * kUs, 0));
  EXPECT_TRUE(t.offer(101 * kUs, 0));
}

TEST(StepTrigger, BudgetExhausts) {
  auto t = armed(2, 100 * kUs, 0);  // zero FCT: spacing floor only
  EXPECT_TRUE(t.offer(200 * kUs, 0));
  EXPECT_TRUE(t.offer(200 * kUs, 20 * kUs));
  EXPECT_FALSE(t.offer(200 * kUs, 40 * kUs));
  EXPECT_EQ(t.remaining(), 0);
  EXPECT_EQ(t.used(), 2);
}

TEST(StepTrigger, SpacingEvenlyDividesFct) {
  auto t = armed(3, 100 * kUs, 900 * kUs);
  EXPECT_EQ(t.spacing(), 300 * kUs);
  EXPECT_TRUE(t.offer(200 * kUs, 0));
  EXPECT_FALSE(t.offer(200 * kUs, 299 * kUs)) << "must wait a full spacing interval";
  EXPECT_TRUE(t.offer(200 * kUs, 300 * kUs));
}

TEST(StepTrigger, SpacingFloorApplies) {
  auto t = armed(100, 100 * kUs, 900 * kUs, 50 * kUs);
  EXPECT_EQ(t.spacing(), 50 * kUs);  // 900/100=9us < floor
}

TEST(StepTrigger, AddBudgetExtendsAndTightensSpacing) {
  auto t = armed(1, 100 * kUs, 900 * kUs);
  EXPECT_EQ(t.spacing(), 900 * kUs);
  EXPECT_TRUE(t.offer(200 * kUs, 0));
  EXPECT_FALSE(t.offer(200 * kUs, 100 * kUs));
  t.add_budget(2);  // notification packet arrived (Fig. 7)
  EXPECT_EQ(t.spacing(), 300 * kUs);
  EXPECT_TRUE(t.offer(200 * kUs, 300 * kUs));
  EXPECT_EQ(t.remaining(), 1);
}

TEST(StepTrigger, UnrestrictedIgnoresBudget) {
  auto t = armed(1, 100 * kUs, 900 * kUs, 10 * kUs, /*unrestricted=*/true);
  for (int i = 0; i < 50; ++i) EXPECT_TRUE(t.offer(200 * kUs, i));
  EXPECT_EQ(t.used(), 50);
}

TEST(StepTrigger, DisarmedNeverFires) {
  auto t = armed(3);
  t.disarm();
  EXPECT_FALSE(t.offer(500 * kUs, 0));
  EXPECT_FALSE(t.armed());
}

TEST(StepTrigger, BeginStepResetsState) {
  auto t = armed(1, 100 * kUs, 0);
  EXPECT_TRUE(t.offer(200 * kUs, 0));
  EXPECT_EQ(t.remaining(), 0);
  t.begin_step(1000, 150 * kUs, 900 * kUs, 3, false, 10 * kUs);
  EXPECT_EQ(t.remaining(), 3);
  EXPECT_EQ(t.threshold(), 150 * kUs);
  EXPECT_FALSE(t.offer(140 * kUs, 2000));
  EXPECT_TRUE(t.offer(200 * kUs, 2000));
}

TEST(StepTrigger, RemainingNeverNegative) {
  auto t = armed(0);
  EXPECT_FALSE(t.offer(500 * kUs, 0));
  EXPECT_EQ(t.remaining(), 0);
}

// Budget conservation: whatever is transferred in is available to fire.
class BudgetConservation : public ::testing::TestWithParam<int> {};

TEST_P(BudgetConservation, TotalFiresEqualsTotalBudget) {
  const int transfers = GetParam();
  auto t = armed(3, 100 * kUs, 0);  // spacing floor 10us
  t.add_budget(transfers);
  int fires = 0;
  Tick now = 0;
  for (int i = 0; i < 200; ++i) {
    if (t.offer(200 * kUs, now)) ++fires;
    now += 10 * kUs;
  }
  EXPECT_EQ(fires, 3 + transfers);
}

INSTANTIATE_TEST_SUITE_P(Transfers, BudgetConservation, ::testing::Values(0, 1, 3, 7, 20));

}  // namespace
}  // namespace vedr::core
