#include "core/diagnosis.h"

#include <gtest/gtest.h>

#include "anomaly/injectors.h"

namespace vedr::core {
namespace {

AnomalyFinding finding(AnomalyType t, PortRef root, std::vector<FlowKey> flows = {},
                       int step = -1, std::vector<PortRef> chain = {}) {
  AnomalyFinding f;
  f.type = t;
  f.root_port = root;
  f.contending_flows = std::move(flows);
  f.step = step;
  f.pfc_chain = std::move(chain);
  if (!f.pfc_chain.empty()) f.congested_ports = f.pfc_chain;
  return f;
}

FlowKey bg(int i) { return anomaly::background_key(i, i, 30 + i); }

TEST(Coalesce, MergesSameTypeSameRootAcrossSteps) {
  std::vector<AnomalyFinding> in{
      finding(AnomalyType::kFlowContention, PortRef{20, 1}, {bg(0)}, 2),
      finding(AnomalyType::kFlowContention, PortRef{20, 1}, {bg(1)}, 0),
      finding(AnomalyType::kFlowContention, PortRef{20, 1}, {bg(0)}, 5),
  };
  const auto out = coalesce_findings(std::move(in));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].contending_flows.size(), 2u);
  EXPECT_EQ(out[0].step, 0) << "earliest step wins";
}

TEST(Coalesce, DistinctRootsStaySeparate) {
  std::vector<AnomalyFinding> in{
      finding(AnomalyType::kFlowContention, PortRef{20, 1}, {bg(0)}),
      finding(AnomalyType::kFlowContention, PortRef{21, 0}, {bg(0)}),
  };
  EXPECT_EQ(coalesce_findings(std::move(in)).size(), 2u);
}

TEST(Coalesce, DistinctTypesStaySeparate) {
  std::vector<AnomalyFinding> in{
      finding(AnomalyType::kFlowContention, PortRef{20, 1}, {bg(0)}),
      finding(AnomalyType::kIncast, PortRef{20, 1}, {bg(0)}),
  };
  EXPECT_EQ(coalesce_findings(std::move(in)).size(), 2u);
}

TEST(Coalesce, KeepsLongestChain) {
  std::vector<AnomalyFinding> in{
      finding(AnomalyType::kPfcBackpressure, PortRef{24, 0}, {}, 1,
              {PortRef{27, 0}, PortRef{24, 0}}),
      finding(AnomalyType::kPfcBackpressure, PortRef{24, 0}, {}, 2,
              {PortRef{35, 2}, PortRef{27, 0}, PortRef{24, 0}}),
  };
  const auto out = coalesce_findings(std::move(in));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].pfc_chain.size(), 3u);
}

TEST(Coalesce, DeduplicatesFlowsAndPorts) {
  std::vector<AnomalyFinding> in{
      finding(AnomalyType::kFlowContention, PortRef{20, 1}, {bg(0), bg(0)}),
      finding(AnomalyType::kFlowContention, PortRef{20, 1}, {bg(0)}),
  };
  const auto out = coalesce_findings(std::move(in));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].contending_flows.size(), 1u);
}

TEST(Diagnosis, DetectsFlowAndAllContenders) {
  Diagnosis d;
  d.findings.push_back(finding(AnomalyType::kFlowContention, PortRef{20, 1}, {bg(0), bg(1)}));
  d.findings.push_back(finding(AnomalyType::kIncast, PortRef{21, 0}, {bg(1), bg(2)}));
  EXPECT_TRUE(d.detects_flow(bg(0)));
  EXPECT_TRUE(d.detects_flow(bg(2)));
  EXPECT_FALSE(d.detects_flow(bg(7)));
  EXPECT_EQ(d.all_contenders().size(), 3u);  // deduplicated union
  EXPECT_TRUE(d.has_type(AnomalyType::kIncast));
  EXPECT_FALSE(d.has_type(AnomalyType::kPfcStorm));
}

TEST(Diagnosis, FindingStrMentionsEverything) {
  const auto f = finding(AnomalyType::kPfcStorm, PortRef{20, 1}, {bg(0)}, 3,
                         {PortRef{19, 2}, PortRef{20, 1}});
  const std::string s = f.str();
  EXPECT_NE(s.find("PfcStorm"), std::string::npos);
  EXPECT_NE(s.find("step=3"), std::string::npos);
  EXPECT_NE(s.find("p(20.1)"), std::string::npos);
  EXPECT_NE(s.find("->"), std::string::npos);
}

TEST(Diagnosis, TypeNames) {
  EXPECT_STREQ(to_string(AnomalyType::kFlowContention), "FlowContention");
  EXPECT_STREQ(to_string(AnomalyType::kIncast), "Incast");
  EXPECT_STREQ(to_string(AnomalyType::kPfcBackpressure), "PfcBackpressure");
  EXPECT_STREQ(to_string(AnomalyType::kPfcStorm), "PfcStorm");
  EXPECT_STREQ(to_string(AnomalyType::kPfcDeadlock), "PfcDeadlock");
  EXPECT_STREQ(to_string(AnomalyType::kRoutingLoop), "RoutingLoop");
}

}  // namespace
}  // namespace vedr::core
