// Monitor behaviour (step-aware thresholds, budgeted triggers, notification
// transfer) and analyzer aggregation, on a live simulated fabric.
#include <gtest/gtest.h>

#include "anomaly/injectors.h"
#include "collective/runner.h"
#include "core/vedrfolnir.h"
#include "net/host.h"
#include "net/network.h"
#include "sim/simulator.h"

namespace vedr::core {
namespace {

struct Fixture {
  sim::Simulator sim;
  net::Topology topo;
  net::Network net;
  std::vector<net::NodeId> participants;

  explicit Fixture(int n = 4)
      : topo(net::make_fat_tree(4, net::NetConfig{})), net(sim, topo, net::NetConfig{}) {
    const auto hosts = topo.hosts();
    participants.assign(hosts.begin(), hosts.begin() + n);
  }

  collective::CollectivePlan plan(std::int64_t bytes = 512 * 1024) {
    return collective::CollectivePlan::ring(0, collective::OpType::kAllGather, participants,
                                            bytes);
  }
};

TEST(Monitor, NoPollsOnHealthyFabric) {
  Fixture f;
  collective::CollectiveRunner runner(f.net, f.plan());
  Vedrfolnir vedr(f.net, runner);
  runner.start(0);
  f.sim.run();
  ASSERT_TRUE(runner.done());
  // An idle fat-tree may still see mild ECMP self-collisions; polls should
  // be rare-to-zero, far below budget (3/step * 4 flows * 3 steps = 36).
  EXPECT_LE(vedr.total_polls(), 6);
}

TEST(Monitor, PollsTriggeredUnderContention) {
  Fixture f;
  collective::CollectiveRunner runner(f.net, f.plan(2 * 1024 * 1024));
  Vedrfolnir vedr(f.net, runner);
  const net::FlowKey bg = anomaly::background_key(0, f.topo.hosts()[12], f.participants[1]);
  anomaly::inject_flow(f.net, {bg, 8 * 1024 * 1024, 0});
  runner.start(0);
  f.sim.run();
  ASSERT_TRUE(runner.done());
  EXPECT_GT(vedr.total_polls(), 0);
  // Budget cap: at most detections_per_step * total transfers (with
  // transfers only moving, never minting, budget).
  const int max_polls = 3 * runner.plan().total_transfers();
  EXPECT_LE(vedr.total_polls(), max_polls);
}

TEST(Monitor, NotificationsTransferBudget) {
  Fixture f;
  collective::CollectiveRunner runner(f.net, f.plan(2 * 1024 * 1024));
  Vedrfolnir vedr(f.net, runner);
  const net::FlowKey bg = anomaly::background_key(0, f.topo.hosts()[12], f.participants[1]);
  anomaly::inject_flow(f.net, {bg, 8 * 1024 * 1024, 0});
  runner.start(0);
  f.sim.run();
  ASSERT_TRUE(runner.done());
  // Every completed step with leftover budget notifies its waiter.
  EXPECT_GT(vedr.total_notifications(), 0);
  int received = 0;
  for (net::NodeId h : f.participants) received += vedr.monitor_of(h).budget_received();
  EXPECT_GT(received, 0);
  EXPECT_GT(f.net.stats().counter("overhead.notify_bytes"), 0);
}

TEST(Monitor, AdaptiveTransferDisabledSendsNothing) {
  Fixture f;
  collective::CollectiveRunner runner(f.net, f.plan(1024 * 1024));
  VedrfolnirConfig cfg;
  cfg.detection.adaptive_transfer = false;
  Vedrfolnir vedr(f.net, runner, cfg);
  runner.start(0);
  f.sim.run();
  EXPECT_EQ(vedr.total_notifications(), 0);
  EXPECT_EQ(f.net.stats().counter("overhead.notify_bytes"), 0);
}

TEST(Monitor, FixedThresholdOverrideRespected) {
  Fixture f;
  collective::CollectiveRunner runner(f.net, f.plan(1024 * 1024));
  VedrfolnirConfig cfg;
  cfg.detection.fixed_rtt_threshold = 1;  // 1 ns: every ACK exceeds it
  Vedrfolnir vedr(f.net, runner, cfg);
  runner.start(0);
  f.sim.run();
  // Threshold of 1ns fires on every sample until budget exhausts: exactly
  // budget-many polls per step pair (minus transfer noise), definitely > 0.
  EXPECT_GT(vedr.total_polls(), 0);
}

TEST(Analyzer, StepRecordsArriveFromMonitors) {
  Fixture f;
  collective::CollectiveRunner runner(f.net, f.plan());
  Vedrfolnir vedr(f.net, runner);
  runner.start(0);
  f.sim.run();
  EXPECT_EQ(vedr.analyzer().step_records(),
            static_cast<std::size_t>(runner.plan().total_transfers()));
}

TEST(Analyzer, DiagnosisHasCriticalPathAndTime) {
  Fixture f;
  collective::CollectiveRunner runner(f.net, f.plan());
  Vedrfolnir vedr(f.net, runner);
  runner.start(0);
  f.sim.run();
  const Diagnosis d = vedr.diagnose();
  EXPECT_FALSE(d.critical_path.empty());
  EXPECT_GT(d.collective_time, 0);
  EXPECT_EQ(d.critical_flow_per_step.size(), 3u);
}

TEST(Analyzer, ReportsGroupedByStepViaPollRegistry) {
  Fixture f;
  collective::CollectiveRunner runner(f.net, f.plan(2 * 1024 * 1024));
  Vedrfolnir vedr(f.net, runner);
  const net::FlowKey bg = anomaly::background_key(0, f.topo.hosts()[12], f.participants[1]);
  anomaly::inject_flow(f.net, {bg, 16 * 1024 * 1024, 0});
  runner.start(0);
  f.sim.run();
  ASSERT_GT(vedr.total_polls(), 0);
  vedr.diagnose();
  EXPECT_GT(vedr.analyzer().step_graph_count(), 0u);
  for (const int step : vedr.analyzer().step_graph_steps()) {
    EXPECT_GE(step, 0);
    EXPECT_LT(step, 3);
    EXPECT_NE(vedr.analyzer().step_graph(step), nullptr);
  }
}

TEST(Analyzer, ContributionsRankContendersUnderContention) {
  Fixture f;
  collective::CollectiveRunner runner(f.net, f.plan(2 * 1024 * 1024));
  Vedrfolnir vedr(f.net, runner);
  const net::FlowKey big = anomaly::background_key(0, f.topo.hosts()[12], f.participants[1]);
  anomaly::inject_flow(f.net, {big, 24 * 1024 * 1024, 0});
  runner.start(0);
  f.sim.run();
  ASSERT_TRUE(runner.done());
  const Diagnosis d = vedr.diagnose();
  ASSERT_TRUE(d.detects_flow(big)) << d.summary();
  // The injected flow should appear among the rated contributors.
  bool rated = false;
  for (const auto& [key, score] : d.contributions) {
    if (key == big) {
      rated = true;
      EXPECT_GT(score, 0.0);
    }
  }
  EXPECT_TRUE(rated) << d.summary();
}

TEST(Analyzer, EmptyDiagnoseIsSafe) {
  net::Topology topo = net::make_fat_tree(4, net::NetConfig{});
  Analyzer analyzer(&topo, nullptr);
  const Diagnosis d = analyzer.diagnose();
  EXPECT_TRUE(d.findings.empty());
  EXPECT_TRUE(d.critical_path.empty());
  EXPECT_EQ(d.collective_time, 0);
  EXPECT_TRUE(d.contributions.empty());
}

TEST(Analyzer, ReportsWithoutRegisteredPollLandInGlobalGraph) {
  net::Topology topo = net::make_fat_tree(4, net::NetConfig{});
  Analyzer analyzer(&topo, nullptr);
  telemetry::SwitchReport report;
  report.switch_id = 20;
  report.poll_id = 0xABC;  // never registered
  analyzer.on_switch_report(report);
  EXPECT_EQ(analyzer.reports_received(), 1u);
  EXPECT_EQ(analyzer.step_graph_count(), 0u);
  EXPECT_EQ(analyzer.global_graph().report_count(), 1u);
}

TEST(Analyzer, RegisteredPollGroupsByStep) {
  net::Topology topo = net::make_fat_tree(4, net::NetConfig{});
  Analyzer analyzer(&topo, nullptr);
  analyzer.register_poll(7, /*flow=*/1, /*step=*/4);
  telemetry::SwitchReport report;
  report.poll_id = 7;
  analyzer.on_switch_report(report);
  ASSERT_EQ(analyzer.step_graph_count(), 1u);
  ASSERT_EQ(analyzer.step_graph_steps().size(), 1u);
  EXPECT_EQ(analyzer.step_graph_steps().front(), 4);
  EXPECT_NE(analyzer.step_graph(4), nullptr);
}

TEST(Vedrfolnir, MonitorOfUnknownHostThrows) {
  Fixture f;
  collective::CollectiveRunner runner(f.net, f.plan());
  Vedrfolnir vedr(f.net, runner);
  EXPECT_NO_THROW(vedr.monitor_of(f.participants[0]));
  EXPECT_THROW(vedr.monitor_of(15), std::out_of_range);  // not a participant
}

TEST(Analyzer, SummaryIsReadable) {
  Fixture f;
  collective::CollectiveRunner runner(f.net, f.plan());
  Vedrfolnir vedr(f.net, runner);
  runner.start(0);
  f.sim.run();
  const std::string s = vedr.diagnose().summary();
  EXPECT_NE(s.find("Diagnosis:"), std::string::npos);
  EXPECT_NE(s.find("critical path"), std::string::npos);
}

}  // namespace
}  // namespace vedr::core
