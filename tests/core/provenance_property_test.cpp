// Randomized equivalence check: the flat interned ProvenanceGraph must
// answer every query identically to the original map-based implementation
// (kept verbatim in reference_provenance.h). Both graphs ingest the same
// synthesized switch reports; every query family the diagnosis pipeline
// uses is then compared exactly — the arithmetic is either integer or
// performed in the same canonical order, so even the doubles must match
// bit for bit.

#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "core/provenance_graph.h"
#include "net/topology.h"
#include "telemetry/records.h"
#include "reference_provenance.h"

namespace vedr {
namespace {

using net::FlowKey;
using net::PortRef;

struct Synth {
  explicit Synth(std::uint32_t seed) : rng(seed) {}

  int uniform(int lo, int hi) { return std::uniform_int_distribution<int>(lo, hi)(rng); }
  bool chance(double p) { return std::bernoulli_distribution(p)(rng); }

  std::mt19937 rng;
};

class PropertyFixture {
 public:
  PropertyFixture() : topo_(net::make_fat_tree(4, net::NetConfig{})) {
    for (const net::NodeId s : topo_.switches()) {
      const auto& node = topo_.node(s);
      for (std::size_t p = 0; p < node.ports.size(); ++p)
        switch_ports_.push_back(PortRef{s, static_cast<net::PortId>(p)});
    }
    const auto hosts = topo_.hosts();
    for (std::size_t i = 0; i + 1 < hosts.size(); i += 1) {
      FlowKey k;
      k.src = hosts[i];
      k.dst = hosts[(i + 5) % hosts.size()];
      k.sport = static_cast<std::uint16_t>(9000 + i);
      k.dport = 4791;
      flows_.push_back(k);
    }
  }

  telemetry::SwitchReport random_report(Synth& s) const {
    telemetry::SwitchReport report;
    report.poll_id = static_cast<std::uint64_t>(s.uniform(0, 1 << 20));
    const int n_ports = s.uniform(1, 4);
    for (int i = 0; i < n_ports; ++i) {
      telemetry::PortReport pr;
      pr.port = pick_port(s);
      pr.poll_time = s.uniform(0, 100000);
      pr.qdepth_pkts = s.uniform(0, 5000);
      pr.qdepth_bytes = pr.qdepth_pkts * 1024;
      pr.currently_paused = s.chance(0.25);
      const int n_flows = s.uniform(0, 5);
      for (int f = 0; f < n_flows; ++f) {
        telemetry::FlowEntry fe;
        fe.flow = pick_flow(s);
        fe.pkts = s.uniform(0, 10000);
        fe.bytes = fe.pkts * 1024;
        pr.flows.push_back(fe);
      }
      const int n_waits = s.uniform(0, 4);
      for (int w = 0; w < n_waits; ++w) {
        telemetry::WaitEntry we;
        we.waiter = pick_flow(s);
        we.ahead = pick_flow(s);
        if (we.ahead == we.waiter) continue;  // self-waits are invalid telemetry
        we.weight = s.uniform(0, 4000);
        pr.waits.push_back(we);
      }
      const int n_meters = s.uniform(0, 3);
      for (int m = 0; m < n_meters; ++m) {
        telemetry::MeterEntry me;
        me.in_port = other_port_of(s, pr.port);
        me.bytes = s.uniform(0, 1 << 20);
        pr.meters.push_back(me);
      }
      report.ports.push_back(pr);
    }
    if (s.chance(0.5)) {
      telemetry::PauseCauseReport cause;
      cause.ingress_port = pick_port(s);
      cause.injected = s.chance(0.2);
      const int n_contrib = s.uniform(1, 3);
      for (int c = 0; c < n_contrib; ++c)
        cause.contributions.emplace_back(other_port_of(s, cause.ingress_port),
                                         s.uniform(0, 1 << 16));
      report.causes.push_back(cause);
    }
    if (s.chance(0.2)) {
      telemetry::DropEntry drop;
      drop.flow = pick_flow(s);
      drop.port = pick_port(s);
      drop.count = s.uniform(1, 50);
      report.drops.push_back(drop);
    }
    return report;
  }

  const net::Topology& topo() const { return topo_; }
  const std::vector<FlowKey>& flows() const { return flows_; }

 private:
  PortRef pick_port(Synth& s) const {
    return switch_ports_[static_cast<std::size_t>(
        s.uniform(0, static_cast<int>(switch_ports_.size()) - 1))];
  }
  FlowKey pick_flow(Synth& s) const {
    return flows_[static_cast<std::size_t>(
        s.uniform(0, static_cast<int>(flows_.size()) - 1))];
  }
  net::PortId other_port_of(Synth& s, const PortRef& p) const {
    const int fanout = static_cast<int>(topo_.node(p.node).ports.size());
    net::PortId q = static_cast<net::PortId>(s.uniform(0, fanout - 1));
    if (q == p.port) q = static_cast<net::PortId>((q + 1) % fanout);
    return q;
  }

  net::Topology topo_;
  std::vector<PortRef> switch_ports_;
  std::vector<FlowKey> flows_;
};

void expect_graphs_agree(const PropertyFixture& fx, const refimpl::ProvenanceGraph& ref,
                         const core::ProvenanceGraph& flat) {
  // Vertex enumerations.
  EXPECT_EQ(ref.ports(), flat.ports());
  EXPECT_EQ(ref.flows(), flat.flows());

  FlowKey unseen;
  unseen.src = 1;
  unseen.dst = 2;
  unseen.sport = 1;
  unseen.dport = 1;

  std::vector<FlowKey> probes = fx.flows();
  probes.push_back(unseen);

  for (const FlowKey& f : probes) {
    EXPECT_EQ(ref.ports_waited_by(f), flat.ports_waited_by(f)) << f.str();
    for (const FlowKey& cf : probes) {
      const double r_ref = ref.contribution_to_flow(f, cf);
      const double r_flat = flat.contribution_to_flow(f, cf);
      EXPECT_EQ(r_ref, r_flat) << f.str() << " -> " << cf.str();
    }
  }

  for (const PortRef& p : ref.ports()) {
    EXPECT_EQ(ref.waiters_at(p), flat.waiters_at(p)) << p.str();
    EXPECT_EQ(ref.flows_at(p), flat.flows_at(p)) << p.str();
    EXPECT_EQ(ref.pfc_downstream(p), flat.pfc_downstream(p)) << p.str();
    EXPECT_EQ(ref.port_paused_recently(p), flat.port_paused_recently(p)) << p.str();
    for (const FlowKey& f : probes) {
      EXPECT_EQ(ref.flow_port_weight(f, p), flat.flow_port_weight(f, p));
      EXPECT_EQ(ref.port_flow_weight(p, f), flat.port_flow_weight(p, f));
      for (const FlowKey& a : fx.flows())
        EXPECT_EQ(ref.pair_weight(p, f, a), flat.pair_weight(p, f, a));
    }
    for (const PortRef& d : ref.pfc_downstream(p)) {
      EXPECT_EQ(ref.port_port_weight(p, d), flat.port_port_weight(p, d));
      EXPECT_EQ(ref.port_port_contribution(p, d), flat.port_port_contribution(p, d));
    }
  }

  // PFC metadata the classifier consumes.
  EXPECT_EQ(ref.storm_sources(), flat.storm_sources());
  ASSERT_EQ(ref.drops().size(), flat.drops().size());
  for (std::size_t i = 0; i < ref.drops().size(); ++i) {
    EXPECT_EQ(ref.drops()[i].flow, flat.drops()[i].flow);
    EXPECT_EQ(ref.drops()[i].port, flat.drops()[i].port);
    EXPECT_EQ(ref.drops()[i].count, flat.drops()[i].count);
  }
}

class ProvenanceProperty : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(ProvenanceProperty, FlatLayoutMatchesReferenceImplementation) {
  PropertyFixture fx;
  Synth s(GetParam());

  std::vector<telemetry::SwitchReport> reports;
  const int n_reports = s.uniform(20, 60);
  for (int i = 0; i < n_reports; ++i) reports.push_back(fx.random_report(s));

  refimpl::ProvenanceGraph ref(&fx.topo());
  core::ProvenanceGraph flat(&fx.topo());
  for (const auto& r : reports) {
    ref.add_report(r);
    flat.add_report(r);
  }
  ref.finalize();
  flat.finalize();
  expect_graphs_agree(fx, ref, flat);

  // reset() must restore a pristine graph over warmed buffers: re-ingesting
  // the same stream has to reproduce every answer again.
  flat.reset();
  EXPECT_TRUE(flat.empty());
  for (const auto& r : reports) flat.add_report(r);
  flat.finalize();
  expect_graphs_agree(fx, ref, flat);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProvenanceProperty,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u));

}  // namespace
}  // namespace vedr
