// Exact-formula tests for the provenance graph weights (§III-D1) and the
// contribution equations (1)-(2) (§III-D3), on hand-built reports.
#include "core/provenance_graph.h"

#include <gtest/gtest.h>

#include "net/topology.h"

namespace vedr::core {
namespace {

using telemetry::FlowEntry;
using telemetry::MeterEntry;
using telemetry::PauseCauseReport;
using telemetry::PortReport;
using telemetry::SwitchReport;
using telemetry::WaitEntry;

FlowKey fk(int i) { return FlowKey{i, 50, static_cast<std::uint16_t>(i), 1}; }

/// Chain topology so peer() resolution works: h0 - s0 - s1 - h1.
net::Topology chain_topo() { return net::make_chain(2, net::NetConfig{}); }

PortReport port_report(PortRef p, std::int64_t qdepth_pkts) {
  PortReport r;
  r.port = p;
  r.poll_time = 1000;
  r.qdepth_pkts = qdepth_pkts;
  r.qdepth_bytes = qdepth_pkts * 4096;
  return r;
}

TEST(Provenance, FlowPortWeightSumsPairWeights) {
  net::Topology topo = chain_topo();
  ProvenanceGraph g(&topo);
  SwitchReport rep;
  rep.switch_id = 2;
  PortReport pr = port_report(PortRef{2, 1}, 10);
  pr.waits.push_back(WaitEntry{fk(1), fk(2), 30});
  pr.waits.push_back(WaitEntry{fk(1), fk(3), 12});
  pr.flows.push_back(FlowEntry{fk(1), 5, 5 * 4096, 0, 1000});
  rep.ports.push_back(pr);
  g.add_report(rep);
  g.finalize();

  EXPECT_DOUBLE_EQ(g.flow_port_weight(fk(1), PortRef{2, 1}), 42.0);
  EXPECT_DOUBLE_EQ(g.pair_weight(PortRef{2, 1}, fk(1), fk(2)), 30.0);
  EXPECT_DOUBLE_EQ(g.pair_weight(PortRef{2, 1}, fk(1), fk(9)), 0.0);
  EXPECT_DOUBLE_EQ(g.flow_port_weight(fk(9), PortRef{2, 1}), 0.0);
}

TEST(Provenance, PortFlowWeightIsShareTimesDepth) {
  net::Topology topo = chain_topo();
  ProvenanceGraph g(&topo);
  SwitchReport rep;
  PortReport pr = port_report(PortRef{2, 1}, 12);
  pr.flows.push_back(FlowEntry{fk(1), 30, 0, 0, 1000});
  pr.flows.push_back(FlowEntry{fk(2), 10, 0, 0, 1000});
  rep.ports.push_back(pr);
  g.add_report(rep);
  g.finalize();

  // w(p, f1) = 30/40 * 12 = 9; w(p, f2) = 10/40 * 12 = 3.
  EXPECT_DOUBLE_EQ(g.port_flow_weight(PortRef{2, 1}, fk(1)), 9.0);
  EXPECT_DOUBLE_EQ(g.port_flow_weight(PortRef{2, 1}, fk(2)), 3.0);
}

TEST(Provenance, MergedReportsKeepMaxima) {
  net::Topology topo = chain_topo();
  ProvenanceGraph g(&topo);
  SwitchReport early;
  PortReport pe = port_report(PortRef{2, 1}, 20);
  pe.currently_paused = true;
  pe.flows.push_back(FlowEntry{fk(1), 8, 0, 0, 500});
  early.ports.push_back(pe);
  g.add_report(early);

  SwitchReport late;
  PortReport pl = port_report(PortRef{2, 1}, 0);  // drained by now
  pl.poll_time = 2000;
  pl.flows.push_back(FlowEntry{fk(1), 12, 0, 0, 1500});
  late.ports.push_back(pl);
  g.add_report(late);
  g.finalize();

  EXPECT_EQ(g.qdepth_pkts(PortRef{2, 1}), 20);            // max survives
  EXPECT_TRUE(g.port_paused_recently(PortRef{2, 1}));     // pause evidence survives
  // Flow counters are cumulative: the larger count wins.
  EXPECT_DOUBLE_EQ(g.port_flow_weight(PortRef{2, 1}, fk(1)), 20.0);
}

/// Builds the paper's Eq. (1) example: flow f waits at upstream port p1
/// which is PFC-halted by downstream port p2.
struct PfcFixture {
  net::Topology topo = chain_topo();  // h0=0, h1=1, s0=2, s1=3
  ProvenanceGraph g{&topo};
  // s0's egress toward s1 is port... chain links: h0-s0 (s0 port 0),
  // h1-s1 (s1 port 0), s0-s1 (s0 port 1, s1 port 1).
  PortRef p1{2, 1};  // upstream egress (s0 -> s1)
  PortRef p2{3, 0};  // downstream congested egress (s1 -> h1)

  void build(double qdepth_p1 = 10, double qdepth_p2 = 40) {
    SwitchReport rep1;
    PortReport pr1 = port_report(p1, static_cast<std::int64_t>(qdepth_p1));
    pr1.flows.push_back(FlowEntry{fk(1), 10, 0, 0, 1000});
    pr1.pauses.push_back(telemetry::PauseEvent{100, 900});
    rep1.ports.push_back(pr1);
    g.add_report(rep1);

    SwitchReport rep2;
    rep2.switch_id = 3;
    PortReport pr2 = port_report(p2, static_cast<std::int64_t>(qdepth_p2));
    pr2.flows.push_back(FlowEntry{fk(1), 10, 0, 0, 1000});
    pr2.flows.push_back(FlowEntry{fk(2), 30, 0, 0, 1000});
    // Meters: traffic into p2 arrived via s1's port 1 (from s0).
    pr2.meters.push_back(MeterEntry{1, 800});
    rep2.ports.push_back(pr2);
    // The pause cause: s1 paused its ingress port 1; blame egress 0.
    PauseCauseReport cause;
    cause.ingress_port = PortRef{3, 1};
    cause.time = 100;
    cause.contributions.emplace_back(0, 123456);
    rep2.causes.push_back(cause);
    g.add_report(rep2);
    g.finalize();
  }
};

TEST(Provenance, PfcEdgeFromPauseCause) {
  PfcFixture f;
  f.build();
  const auto downs = f.g.pfc_downstream(f.p1);
  ASSERT_EQ(downs.size(), 1u);
  EXPECT_EQ(downs[0], f.p2);
  // All of p2's metered traffic came via the paused ingress: weight 1.
  EXPECT_DOUBLE_EQ(f.g.port_port_weight(f.p1, f.p2), 1.0);
  EXPECT_EQ(f.g.port_port_contribution(f.p1, f.p2), 123456);
}

TEST(Provenance, EquationOneRecursion) {
  PfcFixture f;
  f.build();
  // R(f1, p2) = w(p2, f1) = 10/40 * 40 = 10.
  EXPECT_DOUBLE_EQ(f.g.contribution_to_port(fk(1), f.p2), 10.0);
  // R(f1, p1) = w(p1, f1) + R(f1, p2) * w(p1, p2) = 10 + 10*1 = 20.
  EXPECT_DOUBLE_EQ(f.g.contribution_to_port(fk(1), f.p1), 20.0);
  // f2 only appears at p2: R(f2, p1) = 0 + 30 * 1 = 30.
  EXPECT_DOUBLE_EQ(f.g.contribution_to_port(fk(2), f.p1), 30.0);
}

TEST(Provenance, EquationTwoWithContentionCorrection) {
  PfcFixture f;
  f.build();
  // Make cf wait at p1 behind f2 directly: w(cf, f2) = 25 at p1.
  const FlowKey cf = fk(7);
  SwitchReport rep;
  PortReport pr = port_report(f.p1, 10);
  pr.poll_time = 3000;
  pr.waits.push_back(WaitEntry{cf, fk(2), 25});
  pr.flows.push_back(FlowEntry{cf, 10, 0, 0, 2500});
  pr.flows.push_back(FlowEntry{fk(2), 10, 0, 0, 2500});
  rep.ports.push_back(pr);
  f.g.add_report(rep);
  f.g.finalize();

  // P_cf = {p1}. e(f2, p1) does not exist (f2 recorded no waits at p1), so
  // the indicator term is 0 and R(f2, cf) = R(f2, p1).
  const double r_no_contend = f.g.contribution_to_flow(fk(2), cf);
  EXPECT_DOUBLE_EQ(r_no_contend, f.g.contribution_to_port(fk(2), f.p1));

  // Now record f2 waiting at p1 too: the indicator fires and the correction
  // (w(cf,f2) - w(p1,f2)) is added.
  SwitchReport rep2;
  PortReport pr2 = port_report(f.p1, 10);
  pr2.poll_time = 4000;
  pr2.waits.push_back(WaitEntry{fk(2), cf, 5});
  rep2.ports.push_back(pr2);
  f.g.add_report(rep2);
  f.g.finalize();

  const double w_cf_f2 = f.g.pair_weight(f.p1, cf, fk(2));
  const double w_p1_f2 = f.g.port_flow_weight(f.p1, fk(2));
  const double expected = (w_cf_f2 - w_p1_f2) + f.g.contribution_to_port(fk(2), f.p1);
  EXPECT_DOUBLE_EQ(f.g.contribution_to_flow(fk(2), cf), expected);
}

TEST(Provenance, StormSourceFromInjectedCause) {
  net::Topology topo = chain_topo();
  ProvenanceGraph g(&topo);
  SwitchReport rep;
  rep.switch_id = 3;
  PauseCauseReport cause;
  cause.ingress_port = PortRef{3, 1};
  cause.time = 500;
  cause.injected = true;
  rep.causes.push_back(cause);
  g.add_report(rep);
  g.finalize();
  ASSERT_EQ(g.storm_sources().size(), 1u);
  EXPECT_EQ(g.storm_sources()[0], (PortRef{3, 1}));
  EXPECT_TRUE(g.pfc_edges().empty());  // injected causes create no edges
}

TEST(Provenance, CycleGuardTerminates) {
  // Two switches pausing each other (deadlock-shaped): contribution must
  // not recurse forever.
  net::Topology topo = chain_topo();
  ProvenanceGraph g(&topo);

  SwitchReport rep1;
  rep1.switch_id = 2;
  PortReport pr1 = port_report(PortRef{2, 1}, 10);
  pr1.flows.push_back(FlowEntry{fk(1), 10, 0, 0, 1000});
  rep1.ports.push_back(pr1);
  PauseCauseReport c1;
  c1.ingress_port = PortRef{2, 1};  // pauses s1's egress (3,1)
  c1.time = 100;
  c1.contributions.emplace_back(1, 100);
  rep1.causes.push_back(c1);
  g.add_report(rep1);

  SwitchReport rep2;
  rep2.switch_id = 3;
  PortReport pr2 = port_report(PortRef{3, 1}, 10);
  pr2.flows.push_back(FlowEntry{fk(1), 10, 0, 0, 1000});
  rep2.ports.push_back(pr2);
  PauseCauseReport c2;
  c2.ingress_port = PortRef{3, 1};  // pauses s0's egress (2,1)
  c2.time = 100;
  c2.contributions.emplace_back(1, 100);
  rep2.causes.push_back(c2);
  g.add_report(rep2);
  g.finalize();

  // (2,1) -> (3,1) -> (2,1) is a cycle; the guard caps the recursion.
  const double r = g.contribution_to_port(fk(1), PortRef{2, 1});
  EXPECT_GE(r, 0.0);
  EXPECT_LT(r, 1e9);
}

TEST(Provenance, FlowsAndPortsEnumeration) {
  PfcFixture f;
  f.build();
  EXPECT_EQ(f.g.ports().size(), 2u);
  const auto flows = f.g.flows();
  EXPECT_GE(flows.size(), 2u);
  EXPECT_FALSE(f.g.empty());
  EXPECT_EQ(f.g.report_count(), 2u);
}

TEST(Provenance, HostFacingDetection) {
  PfcFixture f;
  f.build();
  EXPECT_TRUE(f.g.host_facing(f.p2));    // s1 port 0 -> h1
  EXPECT_FALSE(f.g.host_facing(f.p1));   // s0 port 1 -> s1
}

}  // namespace
}  // namespace vedr::core
