#pragma once

// Reference implementation of the provenance graph and signature classifier
// as they existed before the flat interned rewrite: nested unordered_map
// storage, composite-key hashing on every query. Kept verbatim (modulo
// inlining) as the behavioural oracle for the randomized property test in
// provenance_property_test.cpp and as the baseline lane of
// bench/diag_throughput. Do not "optimize" this file — its value is that it
// computes the answers the slow, obviously-correct way.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/diagnosis.h"
#include "net/packet.h"
#include "net/topology.h"
#include "net/types.h"
#include "telemetry/records.h"

namespace vedr::refimpl {

using net::FlowKey;
using net::FlowKeyHash;
using net::PortRef;
using net::PortRefHash;

class ProvenanceGraph {
 public:
  explicit ProvenanceGraph(const net::Topology* topo) : topo_(topo) {}

  void add_report(const telemetry::SwitchReport& report) {
    ++reports_seen_;
    finalized_ = false;
    for (const auto& pr : report.ports) {
      PortData& pd = port_reports_[pr.port];
      if (pr.poll_time >= pd.report.poll_time) pd.report = pr;
      pd.max_qdepth_pkts = std::max(pd.max_qdepth_pkts, pr.qdepth_pkts);
      pd.max_qdepth_bytes = std::max(pd.max_qdepth_bytes, pr.qdepth_bytes);
      if (pr.currently_paused || !pr.pauses.empty()) pd.saw_pause = true;
      for (const auto& fe : pr.flows) {
        auto& cur = pd.flow_entries[fe.flow];
        if (fe.pkts >= cur.pkts) cur = fe;
      }
      for (const auto& we : pr.waits) {
        auto& w = pd.waits[we.waiter][we.ahead];
        w = std::max(w, we.weight);
      }
      for (const auto& me : pr.meters) {
        auto& m = pd.meters[me.in_port];
        m = std::max(m, me.bytes);
      }
    }
    for (const auto& cause : report.causes) causes_.push_back(cause);
    for (const auto& drop : report.drops) {
      bool merged = false;
      for (auto& existing : drops_) {
        if (existing.flow == drop.flow && existing.port == drop.port) {
          if (drop.count > existing.count) existing = drop;
          merged = true;
          break;
        }
      }
      if (!merged) drops_.push_back(drop);
    }
  }

  void finalize() {
    if (finalized_) return;
    finalized_ = true;
    pfc_edge_list_.clear();
    pfc_adj_.clear();
    pfc_weights_.clear();
    pfc_contrib_.clear();
    storm_sources_.clear();

    std::unordered_set<std::uint64_t> seen_edges;
    std::unordered_set<std::uint64_t> seen_storms;
    for (const auto& cause : causes_) {
      if (topo_ == nullptr) break;
      const PortRef up = topo_->peer(cause.ingress_port.node, cause.ingress_port.port);
      if (cause.injected) {
        const std::uint64_t k = PortRefHash{}(cause.ingress_port);
        if (seen_storms.insert(k).second) storm_sources_.push_back(cause.ingress_port);
        continue;
      }
      for (const auto& [egress, bytes] : cause.contributions) {
        const PortRef down{cause.ingress_port.node, egress};
        auto& contrib = pfc_contrib_[up][down];
        contrib = std::max(contrib, bytes);
        const std::uint64_t ek =
            PortRefHash{}(up) * 0x9e3779b97f4a7c15ULL ^ PortRefHash{}(down);
        if (!seen_edges.insert(ek).second) continue;
        pfc_edge_list_.emplace_back(up, down);
        pfc_adj_[up].push_back(down);

        double w = 1.0;
        auto it = port_reports_.find(down);
        if (it != port_reports_.end() && !it->second.meters.empty()) {
          double total = 0, from_up = 0;
          for (const auto& [in, b] : it->second.meters) {
            total += static_cast<double>(b);
            if (in == cause.ingress_port.port) from_up += static_cast<double>(b);
          }
          if (total > 0) w = from_up / total;
        }
        pfc_weights_[up][down] = w;
      }
    }
  }

  std::vector<FlowKey> flows() const {
    std::unordered_set<FlowKey, FlowKeyHash> set;
    for (const auto& [port, pd] : port_reports_)
      for (const auto& [key, fe] : pd.flow_entries) set.insert(key);
    std::vector<FlowKey> out(set.begin(), set.end());
    std::sort(out.begin(), out.end());
    return out;
  }

  std::vector<PortRef> ports() const {
    std::vector<PortRef> out;
    out.reserve(port_reports_.size());
    for (const auto& [port, pd] : port_reports_) out.push_back(port);
    std::sort(out.begin(), out.end());
    return out;
  }

  double flow_port_weight(const FlowKey& f, const PortRef& p) const {
    auto it = port_reports_.find(p);
    if (it == port_reports_.end()) return 0;
    auto w = it->second.waits.find(f);
    if (w == it->second.waits.end()) return 0;
    double sum = 0;
    for (const auto& [ahead, weight] : w->second) sum += static_cast<double>(weight);
    return sum;
  }

  double pair_weight(const PortRef& p, const FlowKey& waiter, const FlowKey& ahead) const {
    auto it = port_reports_.find(p);
    if (it == port_reports_.end()) return 0;
    auto w = it->second.waits.find(waiter);
    if (w == it->second.waits.end()) return 0;
    auto a = w->second.find(ahead);
    return a == w->second.end() ? 0 : static_cast<double>(a->second);
  }

  double port_flow_weight(const PortRef& p, const FlowKey& f) const {
    auto it = port_reports_.find(p);
    if (it == port_reports_.end()) return 0;
    const PortData& pd = it->second;
    auto fe = pd.flow_entries.find(f);
    if (fe == pd.flow_entries.end()) return 0;
    std::int64_t total_pkts = 0;
    for (const auto& [key, e] : pd.flow_entries) total_pkts += e.pkts;
    if (total_pkts == 0) return 0;
    return static_cast<double>(fe->second.pkts) / static_cast<double>(total_pkts) *
           static_cast<double>(pd.max_qdepth_pkts);
  }

  double port_port_weight(const PortRef& up, const PortRef& down) const {
    auto it = pfc_weights_.find(up);
    if (it == pfc_weights_.end()) return 0;
    auto jt = it->second.find(down);
    return jt == it->second.end() ? 0 : jt->second;
  }

  std::int64_t port_port_contribution(const PortRef& up, const PortRef& down) const {
    auto it = pfc_contrib_.find(up);
    if (it == pfc_contrib_.end()) return 0;
    auto jt = it->second.find(down);
    return jt == it->second.end() ? 0 : jt->second;
  }

  std::vector<PortRef> ports_waited_by(const FlowKey& f) const {
    std::vector<PortRef> out;
    for (const auto& [port, pd] : port_reports_) {
      auto it = pd.waits.find(f);
      if (it != pd.waits.end() && !it->second.empty()) out.push_back(port);
    }
    std::sort(out.begin(), out.end());
    return out;
  }

  std::vector<FlowKey> waiters_at(const PortRef& p) const {
    std::vector<FlowKey> out;
    auto it = port_reports_.find(p);
    if (it == port_reports_.end()) return out;
    for (const auto& [waiter, row] : it->second.waits)
      if (!row.empty()) out.push_back(waiter);
    std::sort(out.begin(), out.end());
    return out;
  }

  std::vector<FlowKey> flows_at(const PortRef& p) const {
    std::vector<FlowKey> out;
    auto it = port_reports_.find(p);
    if (it == port_reports_.end()) return out;
    for (const auto& [key, fe] : it->second.flow_entries) out.push_back(key);
    std::sort(out.begin(), out.end());
    return out;
  }

  std::vector<PortRef> pfc_downstream(const PortRef& up) const {
    auto it = pfc_adj_.find(up);
    return it == pfc_adj_.end() ? std::vector<PortRef>{} : it->second;
  }

  const std::vector<PortRef>& storm_sources() const { return storm_sources_; }
  const std::vector<telemetry::DropEntry>& drops() const { return drops_; }

  bool host_facing(const PortRef& p) const {
    if (topo_ == nullptr) return false;
    return topo_->is_host(topo_->peer(p.node, p.port).node);
  }

  bool port_paused_recently(const PortRef& p) const {
    auto it = port_reports_.find(p);
    if (it == port_reports_.end()) return false;
    return it->second.saw_pause || it->second.report.currently_paused ||
           !it->second.report.pauses.empty();
  }

  PortRef peer_of(const PortRef& p) const {
    if (topo_ == nullptr) return PortRef{};
    return topo_->peer(p.node, p.port);
  }

  double contribution_to_port(const FlowKey& f, const PortRef& p) const {
    std::unordered_set<PortRef, PortRefHash> visiting;
    return contribution_to_port_impl(f, p, visiting);
  }

  double contribution_to_flow(const FlowKey& f, const FlowKey& cf) const {
    double total = 0;
    for (const PortRef& pk : ports_waited_by(cf)) {
      const bool contend_here = flow_port_weight(f, pk) > 0;
      const double w_cf_fi = pair_weight(pk, cf, f);
      const double w_pk_fi = port_flow_weight(pk, f);
      total += (contend_here ? (w_cf_fi - w_pk_fi) : 0.0) + contribution_to_port(f, pk);
    }
    return total;
  }

  bool empty() const { return port_reports_.empty(); }

 private:
  struct PortData {
    telemetry::PortReport report;
    std::unordered_map<FlowKey, std::unordered_map<FlowKey, std::int64_t, FlowKeyHash>,
                       FlowKeyHash>
        waits;
    std::unordered_map<FlowKey, telemetry::FlowEntry, FlowKeyHash> flow_entries;
    std::unordered_map<net::PortId, std::int64_t> meters;
    std::int64_t max_qdepth_pkts = 0;
    std::int64_t max_qdepth_bytes = 0;
    bool saw_pause = false;
  };

  double contribution_to_port_impl(const FlowKey& f, const PortRef& p,
                                   std::unordered_set<PortRef, PortRefHash>& visiting) const {
    if (!visiting.insert(p).second) return 0;
    double r = port_flow_weight(p, f);
    auto it = pfc_adj_.find(p);
    if (it != pfc_adj_.end()) {
      for (const PortRef& down : it->second)
        r += contribution_to_port_impl(f, down, visiting) * port_port_weight(p, down);
    }
    visiting.erase(p);
    return r;
  }

  const net::Topology* topo_;
  std::unordered_map<PortRef, PortData, PortRefHash> port_reports_;
  std::vector<telemetry::PauseCauseReport> causes_;
  std::vector<std::pair<PortRef, PortRef>> pfc_edge_list_;
  std::unordered_map<PortRef, std::vector<PortRef>, PortRefHash> pfc_adj_;
  std::unordered_map<PortRef, std::unordered_map<PortRef, double, PortRefHash>, PortRefHash>
      pfc_weights_;
  std::unordered_map<PortRef, std::unordered_map<PortRef, std::int64_t, PortRefHash>,
                     PortRefHash>
      pfc_contrib_;
  std::vector<PortRef> storm_sources_;
  std::vector<telemetry::DropEntry> drops_;
  std::size_t reports_seen_ = 0;
  bool finalized_ = false;
};

/// Key-hashing signature classifier as it operated on the map-based graph.
class SignatureClassifier {
 public:
  explicit SignatureClassifier(double min_pair_weight = 8.0)
      : min_pair_weight_(min_pair_weight) {}

  std::vector<core::AnomalyFinding> classify(
      const ProvenanceGraph& g, const std::unordered_set<FlowKey, FlowKeyHash>& cc_flows,
      int step = -1) const {
    using core::AnomalyFinding;
    using core::AnomalyType;
    std::vector<AnomalyFinding> findings;

    AnomalyFinding contention;
    contention.type = AnomalyType::kFlowContention;
    contention.step = step;
    AnomalyFinding incast;
    incast.type = AnomalyType::kIncast;
    incast.step = step;

    for (const PortRef& p : g.ports()) {
      std::vector<FlowKey> contenders;
      for (const FlowKey& cf : g.waiters_at(p)) {
        if (cc_flows.count(cf) == 0) continue;
        for (const FlowKey& other : g.flows_at(p)) {
          if (cc_flows.count(other) > 0) continue;
          if (g.pair_weight(p, cf, other) >= min_pair_weight_) contenders.push_back(other);
        }
      }
      if (contenders.empty()) continue;
      AnomalyFinding& target = g.host_facing(p) ? incast : contention;
      target.congested_ports.push_back(p);
      target.contending_flows.insert(target.contending_flows.end(), contenders.begin(),
                                     contenders.end());
    }
    for (AnomalyFinding* f : {&contention, &incast}) {
      if (f->contending_flows.empty()) continue;
      sort_unique(f->contending_flows);
      sort_unique(f->congested_ports);
      f->root_port = f->congested_ports.front();
      findings.push_back(std::move(*f));
    }

    {
      AnomalyFinding imbalance;
      imbalance.type = AnomalyType::kLoadImbalance;
      imbalance.step = step;
      for (const PortRef& p : g.ports()) {
        if (g.host_facing(p)) continue;
        bool cc_vs_cc = false;
        for (const FlowKey& a : g.waiters_at(p)) {
          if (cc_flows.count(a) == 0) continue;
          for (const FlowKey& b : g.flows_at(p)) {
            if (a == b || cc_flows.count(b) == 0) continue;
            if (g.pair_weight(p, a, b) >= min_pair_weight_ * 16) cc_vs_cc = true;
          }
        }
        if (cc_vs_cc) imbalance.congested_ports.push_back(p);
      }
      if (!imbalance.congested_ports.empty()) {
        sort_unique(imbalance.congested_ports);
        imbalance.root_port = imbalance.congested_ports.front();
        findings.push_back(std::move(imbalance));
      }
    }

    std::unordered_set<PortRef, PortRefHash> chased;
    for (const PortRef& p : g.ports()) {
      if (g.pfc_downstream(p).empty()) continue;
      bool cc_affected = false;
      for (const FlowKey& f : g.flows_at(p)) {
        if (cc_flows.count(f) > 0 &&
            (g.flow_port_weight(f, p) > 0 || g.port_paused_recently(p))) {
          cc_affected = true;
          break;
        }
      }
      if (!cc_affected) continue;
      if (!chased.insert(p).second) continue;

      const ChaseResult cr = chase(g, p);
      AnomalyFinding f;
      f.step = step;
      f.pfc_chain = cr.chain;
      f.congested_ports = cr.chain;

      if (cr.cycle) {
        f.type = AnomalyType::kPfcDeadlock;
        f.root_port = cr.terminal;
      } else {
        PortRef storm{};
        bool is_storm = false;
        for (const PortRef& c : cr.chain) {
          const PortRef pauser = g.peer_of(c);
          for (const PortRef& src : g.storm_sources()) {
            if (src == pauser) {
              is_storm = true;
              storm = src;
              break;
            }
          }
          if (is_storm) break;
        }
        if (is_storm) {
          f.type = AnomalyType::kPfcStorm;
          f.root_port = storm;
        } else {
          f.type = AnomalyType::kPfcBackpressure;
          f.root_port = cr.terminal;
          for (const FlowKey& fk : g.flows_at(cr.terminal))
            if (cc_flows.count(fk) == 0) f.contending_flows.push_back(fk);
          sort_unique(f.contending_flows);
        }
      }
      findings.push_back(std::move(f));
    }

    {
      AnomalyFinding loop;
      loop.type = AnomalyType::kRoutingLoop;
      loop.step = step;
      for (const auto& d : g.drops()) {
        if (cc_flows.count(d.flow) == 0 && cc_flows.count(net::reverse(d.flow)) == 0)
          continue;
        loop.congested_ports.push_back(d.port);
      }
      if (!loop.congested_ports.empty()) {
        sort_unique(loop.congested_ports);
        loop.root_port = loop.congested_ports.front();
        findings.push_back(std::move(loop));
      }
    }

    if (!g.storm_sources().empty() &&
        std::none_of(findings.begin(), findings.end(), [](const core::AnomalyFinding& f) {
          return f.type == core::AnomalyType::kPfcStorm;
        })) {
      bool cc_pfc = false;
      for (const PortRef& p : g.ports()) {
        if (!g.port_paused_recently(p)) continue;
        for (const FlowKey& fk : g.flows_at(p))
          if (cc_flows.count(fk) > 0) cc_pfc = true;
      }
      if (cc_pfc) {
        AnomalyFinding f;
        f.type = core::AnomalyType::kPfcStorm;
        f.step = step;
        f.root_port = g.storm_sources().front();
        findings.push_back(std::move(f));
      }
    }

    return findings;
  }

 private:
  struct ChaseResult {
    std::vector<PortRef> chain;
    PortRef terminal;
    bool cycle = false;
  };

  static void sort_unique(std::vector<FlowKey>& v) {
    std::sort(v.begin(), v.end(), [](const FlowKey& a, const FlowKey& b) {
      return a.hash() < b.hash();
    });
    v.erase(std::unique(v.begin(), v.end()), v.end());
  }

  static void sort_unique(std::vector<PortRef>& v) {
    std::sort(v.begin(), v.end());
    v.erase(std::unique(v.begin(), v.end()), v.end());
  }

  ChaseResult chase(const ProvenanceGraph& g, const PortRef& start) const {
    ChaseResult result;
    std::unordered_set<PortRef, PortRefHash> visited;
    PortRef cur = start;
    result.chain.push_back(cur);
    visited.insert(cur);
    while (true) {
      const auto downs = g.pfc_downstream(cur);
      if (downs.empty()) break;
      PortRef next = downs.front();
      std::int64_t best = -1;
      for (const PortRef& d : downs) {
        const std::int64_t c = g.port_port_contribution(cur, d);
        if (c > best) {
          best = c;
          next = d;
        }
      }
      if (!visited.insert(next).second) {
        result.cycle = true;
        break;
      }
      result.chain.push_back(next);
      cur = next;
    }
    result.terminal = cur;
    return result;
  }

  double min_pair_weight_;
};

}  // namespace vedr::refimpl
