#include "core/waiting_graph.h"

#include <gtest/gtest.h>

namespace vedr::core {
namespace {

using collective::StepRecord;

/// Builds a step record with explicit timings.
StepRecord rec(int flow, int step, Tick start, Tick end, int dep_flow = -1,
               Tick dep_ready = sim::kNever, Tick prev_done = sim::kNever) {
  StepRecord r;
  r.flow_index = flow;
  r.step = step;
  r.src = flow;
  r.dst = flow + 1;
  r.bytes = 1000;
  r.start_time = start;
  r.end_time = end;
  r.dep_flow = dep_flow;
  r.dep_step = dep_flow >= 0 ? step - 1 : -1;
  r.dep_ready_time = dep_ready;
  r.prev_done_time = prev_done;
  r.expected_duration = (end - start) / 2;
  r.key = net::FlowKey{flow, flow + 1, static_cast<std::uint16_t>(9000 + flow),
                       static_cast<std::uint16_t>(1000 + step)};
  return r;
}

TEST(WaitingGraph, EdgeTypesAndWeights) {
  // Two flows, two steps; flow 1 step 1 depends on flow 0 step 0.
  std::vector<StepRecord> records{
      rec(0, 0, 0, 100),
      rec(1, 0, 0, 120),
      rec(1, 1, 120, 250, /*dep_flow=*/0, /*dep_ready=*/110, /*prev_done=*/120),
  };
  const auto g = WaitingGraph::build(records);
  EXPECT_EQ(g.num_vertices(), 6u);

  int exec = 0, prev = 0, dep = 0;
  for (const auto& e : g.edges()) {
    switch (e.type) {
      case WgEdgeType::kExecution:
        ++exec;
        EXPECT_GT(e.weight, 0);
        break;
      case WgEdgeType::kPrevStep:
        ++prev;
        EXPECT_EQ(e.weight, 0);
        break;
      case WgEdgeType::kDataDep:
        ++dep;
        EXPECT_EQ(e.weight, 0);
        break;
    }
  }
  EXPECT_EQ(exec, 3);
  EXPECT_EQ(prev, 1);
  EXPECT_EQ(dep, 1);
}

TEST(WaitingGraph, CriticalPathFollowsBindingDependency) {
  // flow1 step1 started at 120 because its own previous step ended at 120
  // (dep was ready at 110): the binding predecessor is the previous step.
  std::vector<StepRecord> records{
      rec(0, 0, 0, 100),
      rec(1, 0, 0, 120),
      rec(1, 1, 120, 250, 0, /*dep_ready=*/110, /*prev_done=*/120),
  };
  const auto g = WaitingGraph::build(records);
  const auto path = g.critical_path();
  ASSERT_EQ(path.size(), 2u);
  EXPECT_EQ(path[0], (std::pair<int, int>{1, 0}));
  EXPECT_EQ(path[1], (std::pair<int, int>{1, 1}));
}

TEST(WaitingGraph, CriticalPathFollowsDataDependency) {
  // Same shape, but now the data dependency was the binding gate.
  std::vector<StepRecord> records{
      rec(0, 0, 0, 140),
      rec(1, 0, 0, 90),
      rec(1, 1, 150, 260, 0, /*dep_ready=*/150, /*prev_done=*/90),
  };
  const auto g = WaitingGraph::build(records);
  const auto path = g.critical_path();
  ASSERT_EQ(path.size(), 2u);
  EXPECT_EQ(path[0], (std::pair<int, int>{0, 0}));
  EXPECT_EQ(path[1], (std::pair<int, int>{1, 1}));
}

TEST(WaitingGraph, CriticalFlowOfStep) {
  std::vector<StepRecord> records{
      rec(0, 0, 0, 140),
      rec(1, 0, 0, 90),
      rec(1, 1, 150, 260, 0, 150, 90),
  };
  const auto g = WaitingGraph::build(records);
  EXPECT_EQ(g.critical_flow_of_step(0), 0);
  EXPECT_EQ(g.critical_flow_of_step(1), 1);
  EXPECT_EQ(g.critical_flow_of_step(7), -1);
}

TEST(WaitingGraph, TotalTime) {
  std::vector<StepRecord> records{rec(0, 0, 50, 100), rec(1, 0, 0, 300)};
  const auto g = WaitingGraph::build(records);
  EXPECT_EQ(g.total_time(), 300);
}

TEST(WaitingGraph, PruneKeepsHistoryReachableFromFinalEnds) {
  // Final-step ends are the graph's sources (§III-B) and are never pruned;
  // the dependency history they reach survives.
  std::vector<StepRecord> records{
      rec(0, 0, 0, 100),
      rec(1, 0, 0, 120),
      rec(1, 1, 120, 250, 0, 110, 120),
  };
  const auto g = WaitingGraph::build(records);
  const auto kept = g.pruned_vertices();
  // Everything here feeds a final end: nothing is pruned.
  EXPECT_EQ(kept.size(), g.num_vertices());
}

TEST(WaitingGraph, PruneDropsVerticesNoSourceReaches) {
  // Flow 2's step 1 record is missing (incomplete collection): its step 0
  // is unreachable from the flow's final end and gets pruned.
  std::vector<StepRecord> records{
      rec(2, 0, 0, 100),
      rec(2, 2, 300, 400, -1, sim::kNever, sim::kNever),  // step 1 lost
  };
  const auto g = WaitingGraph::build(records);
  const auto kept = g.pruned_vertices();
  EXPECT_EQ(kept.size(), 2u);  // only F2S2 end/start survive
  for (const auto& v : kept) EXPECT_EQ(v.step, 2);
}

TEST(WaitingGraph, EmptyGraph) {
  const auto g = WaitingGraph::build({});
  EXPECT_TRUE(g.empty());
  EXPECT_TRUE(g.critical_path().empty());
  EXPECT_EQ(g.total_time(), 0);
}

TEST(WaitingGraph, IncompleteRecordsTolerated) {
  std::vector<StepRecord> records{rec(0, 0, 0, 100)};
  records.push_back(rec(0, 1, 100, sim::kNever, -1, sim::kNever, 100));  // in flight
  const auto g = WaitingGraph::build(records);
  EXPECT_FALSE(g.critical_path().empty());
}

TEST(WaitingGraph, DotOutputMentionsVertices) {
  std::vector<StepRecord> records{rec(0, 0, 0, 100), rec(1, 0, 0, 90)};
  const auto g = WaitingGraph::build(records);
  const std::string dot = g.to_dot();
  EXPECT_NE(dot.find("F0S0"), std::string::npos);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
}

TEST(WaitingGraph, LongChainCriticalPath) {
  // A 5-step single-flow chain: the critical path is the whole chain.
  std::vector<StepRecord> records;
  for (int s = 0; s < 5; ++s)
    records.push_back(rec(0, s, s * 100, (s + 1) * 100, -1, sim::kNever,
                          s > 0 ? s * 100 : sim::kNever));
  const auto g = WaitingGraph::build(records);
  EXPECT_EQ(g.critical_path().size(), 5u);
}

}  // namespace
}  // namespace vedr::core
