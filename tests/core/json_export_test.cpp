#include "core/json_export.h"

#include <gtest/gtest.h>

#include "anomaly/injectors.h"

namespace vedr::core {
namespace {

TEST(Json, EscapesSpecials) {
  EXPECT_EQ(json::escape("plain"), "plain");
  EXPECT_EQ(json::escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json::escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json::escape("a\nb"), "a\\nb");
  EXPECT_EQ(json::escape(std::string("a\x01") + "b"), "a\\u0001b");
}

TEST(Json, FindingRoundTripFields) {
  AnomalyFinding f;
  f.type = AnomalyType::kPfcStorm;
  f.step = 2;
  f.root_port = PortRef{20, 1};
  f.contending_flows = {anomaly::background_key(0, 1, 2)};
  f.pfc_chain = {PortRef{19, 2}, PortRef{20, 1}};
  const std::string j = json::finding_to_json(f);
  EXPECT_NE(j.find("\"type\":\"PfcStorm\""), std::string::npos);
  EXPECT_NE(j.find("\"step\":2"), std::string::npos);
  EXPECT_NE(j.find("p(20.1)"), std::string::npos);
  EXPECT_NE(j.find("\"chain\":[\"p(19.2)\",\"p(20.1)\"]"), std::string::npos);
}

TEST(Json, DiagnosisSerializes) {
  Diagnosis d;
  d.collective_time = 1234567;
  d.critical_path = {{0, 0}, {1, 1}};
  d.contributions = {{anomaly::background_key(0, 1, 2), 42.5}};
  d.critical_flow_per_step = {0, 1};
  AnomalyFinding f;
  f.type = AnomalyType::kFlowContention;
  d.findings.push_back(f);

  const std::string j = json::diagnosis_to_json(d);
  EXPECT_NE(j.find("\"collective_time_ns\":1234567"), std::string::npos);
  EXPECT_NE(j.find("\"critical_path\":[{\"flow\":0,\"step\":0},{\"flow\":1,\"step\":1}]"),
            std::string::npos);
  EXPECT_NE(j.find("\"score\":42.5"), std::string::npos);
  EXPECT_NE(j.find("\"critical_flow_per_step\":[0,1]"), std::string::npos);
}

TEST(Json, DeterministicOutput) {
  Diagnosis d;
  d.collective_time = 99;
  EXPECT_EQ(json::diagnosis_to_json(d), json::diagnosis_to_json(d));
}

TEST(Json, WaitingGraphSerializes) {
  collective::StepRecord r;
  r.flow_index = 0;
  r.step = 0;
  r.start_time = 0;
  r.end_time = 100;
  const auto g = WaitingGraph::build({r});
  const std::string j = json::waiting_graph_to_json(g);
  EXPECT_NE(j.find("\"vertices\""), std::string::npos);
  EXPECT_NE(j.find("F0S0"), std::string::npos);
  EXPECT_NE(j.find("\"type\":\"execution\""), std::string::npos);
  EXPECT_NE(j.find("\"weight_ns\":100"), std::string::npos);
}

TEST(Json, BalancedBrackets) {
  Diagnosis d;
  AnomalyFinding f;
  f.type = AnomalyType::kIncast;
  f.contending_flows = {anomaly::background_key(0, 1, 2), anomaly::background_key(1, 3, 4)};
  d.findings.push_back(f);
  const std::string j = json::diagnosis_to_json(d);
  int depth = 0;
  for (char c : j) {
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

}  // namespace
}  // namespace vedr::core
