// Proves the waiting-graph and provenance-graph invariant checks fire on
// malformed inputs (mirrors tests/net/invariants_test.cpp for the switch and
// DCQCN layers).
#include <gtest/gtest.h>

#include "common/check.h"
#include "core/provenance_graph.h"
#include "core/waiting_graph.h"
#include "net/topology.h"

namespace vedr::core {
namespace {

using common::CheckFailure;
using common::ScopedThrowOnCheckFailure;
using telemetry::PauseCauseReport;
using telemetry::PortReport;
using telemetry::SwitchReport;
using telemetry::WaitEntry;

collective::StepRecord rec(int flow, int step, Tick start, Tick end) {
  collective::StepRecord r;
  r.flow_index = flow;
  r.step = step;
  r.src = flow;
  r.dst = flow + 1;
  r.bytes = 1000;
  r.start_time = start;
  r.end_time = end;
  r.expected_duration = 10;
  r.key = net::FlowKey{flow, flow + 1, static_cast<std::uint16_t>(9000 + flow),
                       static_cast<std::uint16_t>(1000 + step)};
  return r;
}

TEST(WaitingGraphInvariants, NegativeDurationIsCaught) {
  ScopedThrowOnCheckFailure guard;
  std::vector<collective::StepRecord> records{rec(0, 0, /*start=*/100, /*end=*/50)};
  EXPECT_THROW(WaitingGraph::build(records), CheckFailure);
}

TEST(WaitingGraphInvariants, SelfDependencyIsCaught) {
  ScopedThrowOnCheckFailure guard;
  auto r = rec(0, 1, 0, 100);
  r.dep_flow = 0;
  r.dep_step = 1;  // step depends on itself
  std::vector<collective::StepRecord> records{rec(0, 0, 0, 50), r};
  EXPECT_THROW(WaitingGraph::build(records), CheckFailure);
}

TEST(WaitingGraphInvariants, NegativeIndicesAreCaught) {
  ScopedThrowOnCheckFailure guard;
  auto r = rec(0, 0, 0, 100);
  r.flow_index = -3;
  std::vector<collective::StepRecord> records{r};
  EXPECT_THROW(WaitingGraph::build(records), CheckFailure);
}

TEST(WaitingGraphInvariants, AuditPassesOnWellFormedGraph) {
  std::vector<collective::StepRecord> records{rec(0, 0, 0, 100), rec(1, 0, 0, 120),
                                              rec(0, 1, 100, 200), rec(1, 1, 120, 260)};
  const auto g = WaitingGraph::build(records);
  ScopedThrowOnCheckFailure guard;
  EXPECT_NO_THROW(g.audit());
}

FlowKey fk(int i) { return FlowKey{i, 50, static_cast<std::uint16_t>(i), 1}; }

TEST(ProvenanceInvariants, NegativePauseContributionIsCaught) {
  net::Topology topo = net::make_chain(2, net::NetConfig{});
  ProvenanceGraph g(&topo);
  SwitchReport rep;
  PauseCauseReport cause;
  cause.ingress_port = PortRef{2, 1};
  cause.time = 500;
  cause.contributions.push_back({0, -64});  // negative bytes: crossed wires
  rep.causes.push_back(cause);
  g.add_report(rep);
  ScopedThrowOnCheckFailure guard;
  EXPECT_THROW(g.finalize(), CheckFailure);
}

TEST(ProvenanceInvariants, SelfWaitIsCaughtByAudit) {
  net::Topology topo = net::make_chain(2, net::NetConfig{});
  ProvenanceGraph g(&topo);
  SwitchReport rep;
  PortReport pr;
  pr.port = PortRef{2, 1};
  pr.poll_time = 1000;
  pr.qdepth_pkts = 4;
  pr.qdepth_bytes = 4 * 4096;
  pr.waits.push_back(WaitEntry{fk(1), fk(1), 8});  // flow waiting on itself
  rep.ports.push_back(pr);
  g.add_report(rep);
  g.finalize();
  ScopedThrowOnCheckFailure guard;
  EXPECT_THROW(g.audit(/*expect_dag=*/false), CheckFailure);
}

TEST(ProvenanceInvariants, PfcCycleDetectedAndDagAuditFires) {
  // Build a genuine two-switch PAUSE cycle over the inter-switch link:
  // each switch's link port pauses the other and attributes the bytes to
  // that same link port, closing the loop.
  net::Topology topo = net::make_chain(2, net::NetConfig{});
  const net::NodeId sw_a = topo.switches()[0];
  const net::NodeId sw_b = topo.switches()[1];
  net::PortId a_to_b = net::kInvalidPort;
  const int a_ports = static_cast<int>(topo.node(sw_a).ports.size());
  for (net::PortId p = 0; p < a_ports; ++p) {
    if (topo.peer(sw_a, p).node == sw_b) a_to_b = p;
  }
  ASSERT_NE(a_to_b, net::kInvalidPort);
  const PortRef b_side = topo.peer(sw_a, a_to_b);

  ProvenanceGraph g(&topo);
  SwitchReport rep;
  PauseCauseReport from_a;
  from_a.ingress_port = PortRef{sw_a, a_to_b};
  from_a.time = 500;
  from_a.contributions.push_back({a_to_b, 4096});
  rep.causes.push_back(from_a);
  PauseCauseReport from_b;
  from_b.ingress_port = b_side;
  from_b.time = 500;
  from_b.contributions.push_back({b_side.port, 4096});
  rep.causes.push_back(from_b);
  g.add_report(rep);
  g.finalize();

  EXPECT_TRUE(g.pfc_has_cycle());
  ScopedThrowOnCheckFailure guard;
  EXPECT_NO_THROW(g.audit(/*expect_dag=*/false));
  EXPECT_THROW(g.audit(/*expect_dag=*/true), CheckFailure);
}

TEST(ProvenanceInvariants, LinearPfcChainIsAcyclic) {
  net::Topology topo = net::make_chain(2, net::NetConfig{});
  const net::NodeId sw_a = topo.switches()[0];
  ProvenanceGraph g(&topo);
  SwitchReport rep;
  PauseCauseReport cause;
  cause.ingress_port = PortRef{sw_a, 0};
  cause.time = 500;
  cause.contributions.push_back({1, 4096});
  rep.causes.push_back(cause);
  g.add_report(rep);
  g.finalize();
  EXPECT_FALSE(g.pfc_has_cycle());
  ScopedThrowOnCheckFailure guard;
  EXPECT_NO_THROW(g.audit(/*expect_dag=*/true));
}

}  // namespace
}  // namespace vedr::core
