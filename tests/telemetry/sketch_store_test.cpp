// Property tests for the bounded sketch telemetry backend (DESIGN.md §13),
// run side by side with an in-test exact model of the same event stream:
//
//   * count-min estimates never underestimate, and under the fixed row seeds
//     the classical (e / width) * N error bound holds for the bulk of flows;
//   * the top-k heavy-hitter heap is a superset of every flow whose true
//     count beats the heap's minimum estimate (the strict-> insertion rule);
//   * pair-table (space-saving) weights never underestimate and overshoot by
//     at most total pair mass / capacity;
//   * the whole lane is deterministic: same stream, same snapshot bytes, and
//     same end-to-end run_case_digest under --telemetry sketch.
//
// The random streams use a fixed mt19937_64 seed, so every assertion is
// reproducible — a failure is a real regression, never flake.
#include "telemetry/sketch_store.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <map>
#include <random>
#include <vector>

#include "eval/experiment.h"
#include "net/routing.h"
#include "telemetry/compressor.h"
#include "telemetry/exact_store.h"
#include "telemetry/recorder.h"

namespace vedr::telemetry {
namespace {

FlowKey fk(int i) { return FlowKey{i, 100, static_cast<std::uint16_t>(i), 1}; }

TelemetryParams sketch_params(std::int32_t width, std::int32_t depth, std::int32_t k) {
  TelemetryParams p;
  p.backend = TelemetryBackend::kSketch;
  p.sketch_width = width;
  p.sketch_depth = depth;
  p.topk = k;
  return p;
}

/// Exact oracle maintained alongside the store under test: per-flow packet
/// tallies plus the same queue-ahead pair semantics the exact backend keeps
/// (waiter gains the count of every other flow's packets ahead of it).
struct ExactModel {
  std::map<FlowKey, std::int64_t> pkts;
  std::map<FlowKey, std::int64_t> bytes;
  std::map<FlowKey, std::int64_t> in_queue;
  std::map<std::pair<FlowKey, FlowKey>, std::int64_t> waits;
  std::int64_t pair_mass = 0;

  void enqueue(const FlowKey& f, std::int64_t size) {
    pkts[f] += 1;
    bytes[f] += size;
    for (const auto& [g, cnt] : in_queue) {
      if (g == f || cnt <= 0) continue;
      waits[{f, g}] += cnt;
      pair_mass += cnt;
    }
    in_queue[f] += 1;
  }
  void dequeue(const FlowKey& f) {
    auto it = in_queue.find(f);
    if (it == in_queue.end()) return;
    if (--it->second <= 0) in_queue.erase(it);
  }
};

/// Drives `store` and the oracle with an identical randomized stream: `n`
/// flows with a heavily skewed packet budget (flow 0 dominates), enqueues
/// interleaved with dequeues that keep the queue partially occupied.
ExactModel drive(SketchStore& store, int n_flows, int n_events, std::uint64_t seed) {
  ExactModel model;
  std::mt19937_64 rng(seed);
  // Skew: flow i gets weight ~ 1/(i+1), so low ids are the heavy hitters.
  std::vector<double> weights(static_cast<std::size_t>(n_flows));
  for (int i = 0; i < n_flows; ++i) weights[static_cast<std::size_t>(i)] = 1.0 / (1.0 + i);
  std::discrete_distribution<int> pick(weights.begin(), weights.end());
  std::vector<FlowKey> queue_fifo;

  Tick now = 0;
  for (int e = 0; e < n_events; ++e) {
    now += 10;
    const bool do_dequeue = !queue_fifo.empty() && (queue_fifo.size() > 24 || (e % 3 == 0));
    if (do_dequeue) {
      const FlowKey f = queue_fifo.front();
      queue_fifo.erase(queue_fifo.begin());
      store.on_dequeue(f, 1000);
      model.dequeue(f);
    } else {
      const FlowKey f = fk(pick(rng));
      store.on_enqueue(f, 1000, now);
      model.enqueue(f, 1000);
      queue_fifo.push_back(f);
    }
  }
  return model;
}

TEST(CountMinSketch, OverestimateOnlyWithinClassicalBound) {
  const std::int32_t width = 128;
  const std::int32_t depth = 4;
  CountMinSketch cm(width, depth);
  std::map<std::uint64_t, std::int64_t> truth;
  std::mt19937_64 rng(0xFEEDu);
  for (int i = 0; i < 4000; ++i) {
    const std::uint64_t key = rng() % 600;
    const std::int64_t delta = static_cast<std::int64_t>(rng() % 16);
    cm.add(key, delta);
    truth[key] += delta;
  }

  const double eps_n = (2.718281828 / width) * static_cast<double>(cm.total());
  int within = 0;
  for (const auto& [key, t] : truth) {
    const std::int64_t est = cm.estimate(key);
    ASSERT_GE(est, t) << "count-min underestimated key " << key;
    if (static_cast<double>(est - t) <= eps_n) ++within;
  }
  // The (e/width)*N bound holds per query w.p. 1 - e^-depth (~98% at depth
  // 4); under the fixed seeds this margin is deterministic.
  EXPECT_GE(within * 10, static_cast<int>(truth.size()) * 9)
      << "error bound violated for >10% of keys";
}

TEST(SketchStore, NeverUnderestimatesAndTopKIsSuperset) {
  SketchStore store(sketch_params(256, 4, 16));
  const ExactModel model = drive(store, /*n_flows=*/120, /*n_events=*/6000, 0xABCDu);

  for (const auto& [f, true_pkts] : model.pkts) {
    EXPECT_GE(store.estimate_pkts(f), true_pkts) << "pkts underestimated for " << f.str();
    EXPECT_GE(store.estimate_bytes(f), model.bytes.at(f));
  }

  // Superset guarantee: the heap minimum only ever rises, and a flow enters
  // whenever its estimate strictly beats it — so any flow whose TRUE count
  // (<= its estimate) beats the final minimum estimate must be resident.
  const std::vector<FlowKey> topk = store.topk_flows();
  ASSERT_FALSE(topk.empty());
  ASSERT_LE(topk.size(), 16u);
  std::int64_t heap_min_est = std::numeric_limits<std::int64_t>::max();
  for (const FlowKey& f : topk) heap_min_est = std::min(heap_min_est, store.estimate_pkts(f));
  for (const auto& [f, true_pkts] : model.pkts) {
    if (true_pkts <= heap_min_est) continue;
    EXPECT_TRUE(std::find(topk.begin(), topk.end(), f) != topk.end())
        << f.str() << " has true count " << true_pkts << " > heap min estimate "
        << heap_min_est << " but was evicted from the top-k";
  }
  EXPECT_TRUE(store.truncated()) << "120 flows through a k=16 heap must evict";
}

TEST(SketchStore, PairWeightsOverestimateWithinMassOverCapacity) {
  const std::int32_t k = 16;
  TelemetryParams params = sketch_params(256, 4, k);
  SketchStore store(params);
  const ExactModel model = drive(store, /*n_flows=*/40, /*n_events=*/4000, 0x5EEDu);

  PortReport r;
  store.fill_snapshot(r, /*now=*/1000000, /*since=*/0);
  ASSERT_FALSE(r.waits.empty());
  const double slack = static_cast<double>(model.pair_mass) / params.pair_cap();
  for (const auto& we : r.waits) {
    const auto it = model.waits.find({we.waiter, we.ahead});
    const std::int64_t truth = it == model.waits.end() ? 0 : it->second;
    EXPECT_GE(we.weight, truth) << "pair weight underestimated";
    EXPECT_LE(static_cast<double>(we.weight - truth), slack)
        << "space-saving overshoot beyond pair_mass/capacity";
  }
}

TEST(SketchStore, SnapshotIsCanonicallySortedAndBounded) {
  SketchStore store(sketch_params(128, 3, 8));
  drive(store, /*n_flows=*/60, /*n_events=*/3000, 0xC0DEu);
  PortReport r;
  store.fill_snapshot(r, 1000000, 0);
  ASSERT_LE(r.flows.size(), 8u);
  EXPECT_TRUE(std::is_sorted(r.flows.begin(), r.flows.end(),
                             [](const FlowEntry& a, const FlowEntry& b) {
                               return a.flow < b.flow;
                             }));
  EXPECT_TRUE(std::is_sorted(r.waits.begin(), r.waits.end(),
                             [](const WaitEntry& a, const WaitEntry& b) {
                               if (a.waiter != b.waiter) return a.waiter < b.waiter;
                               return a.ahead < b.ahead;
                             }));
  EXPECT_TRUE(r.truncated);
}

TEST(SketchStore, SameStreamSameSnapshotBytes) {
  SketchStore a(sketch_params(256, 4, 16));
  SketchStore b(sketch_params(256, 4, 16));
  drive(a, 80, 5000, 0xD15Cu);
  drive(b, 80, 5000, 0xD15Cu);

  PortReport ra, rb;
  a.fill_snapshot(ra, 1000000, 0);
  b.fill_snapshot(rb, 1000000, 0);
  ASSERT_EQ(ra.flows.size(), rb.flows.size());
  for (std::size_t i = 0; i < ra.flows.size(); ++i) {
    EXPECT_EQ(ra.flows[i].flow, rb.flows[i].flow);
    EXPECT_EQ(ra.flows[i].pkts, rb.flows[i].pkts);
    EXPECT_EQ(ra.flows[i].bytes, rb.flows[i].bytes);
  }
  ASSERT_EQ(ra.waits.size(), rb.waits.size());
  for (std::size_t i = 0; i < ra.waits.size(); ++i) {
    EXPECT_EQ(ra.waits[i].waiter, rb.waits[i].waiter);
    EXPECT_EQ(ra.waits[i].ahead, rb.waits[i].ahead);
    EXPECT_EQ(ra.waits[i].weight, rb.waits[i].weight);
  }
  EXPECT_EQ(a.state_bytes(), b.state_bytes());
}

TEST(ReportCompressor, DeterministicTopKAndMarker) {
  PortReport r;
  r.port = PortRef{3, 1};
  for (int i = 0; i < 40; ++i) {
    FlowEntry fe;
    fe.flow = fk(i);
    fe.pkts = 100 - i;  // distinct counts: selection is unambiguous
    fe.bytes = (100 - i) * 1000;
    r.flows.push_back(fe);
  }
  TelemetryParams params = sketch_params(512, 4, 8);
  const ReportCompressor comp(params);
  comp.compress(r);
  ASSERT_EQ(r.flows.size(), 8u);
  EXPECT_TRUE(r.truncated);
  // The 8 heaviest flows (ids 0..7) survive, reported in FlowKey order.
  for (int i = 0; i < 8; ++i) EXPECT_EQ(r.flows[static_cast<std::size_t>(i)].flow, fk(i));

  SwitchReport sr;
  sr.ports.push_back(r);
  comp.compress(sr);
  EXPECT_EQ(sr.backend, TelemetryBackend::kSketch);
}

TEST(SketchStore, RunCaseDigestIsRepeatableOnSketchLane) {
  eval::RunConfig cfg;
  cfg.netcfg.telemetry = sketch_params(128, 3, 16);
  eval::ScenarioParams params;
  params.scale = 1.0 / 256.0;
  const net::Topology topo = net::make_fat_tree(4, cfg.netcfg);
  const auto routing = net::RoutingTable::shortest_paths(topo);
  const auto spec =
      eval::make_scenario(eval::ScenarioType::kFlowContention, 0, topo, routing, params);
  const std::uint64_t d1 = eval::run_case_digest(spec, eval::SystemKind::kVedrfolnir, cfg);
  const std::uint64_t d2 = eval::run_case_digest(spec, eval::SystemKind::kVedrfolnir, cfg);
  EXPECT_EQ(d1, d2) << "sketch lane must be deterministic run-to-run";
}

TEST(SketchStore, DiagnosisCarriesSketchLaneMarker) {
  eval::RunConfig cfg;
  cfg.netcfg.telemetry = sketch_params(128, 3, 16);
  eval::ScenarioParams params;
  params.scale = 1.0 / 256.0;
  const net::Topology topo = net::make_fat_tree(4, cfg.netcfg);
  const auto routing = net::RoutingTable::shortest_paths(topo);
  const auto spec =
      eval::make_scenario(eval::ScenarioType::kFlowContention, 0, topo, routing, params);
  const eval::CaseResult r = eval::run_case(spec, eval::SystemKind::kVedrfolnir, cfg);
  EXPECT_TRUE(r.diagnosis.sketch_lane);
  EXPECT_GT(r.telemetry_state_bytes, 0);

  eval::RunConfig exact_cfg;
  const eval::CaseResult e = eval::run_case(spec, eval::SystemKind::kVedrfolnir, exact_cfg);
  EXPECT_FALSE(e.diagnosis.sketch_lane);
}

}  // namespace
}  // namespace vedr::telemetry
