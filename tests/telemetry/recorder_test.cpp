#include "telemetry/recorder.h"

#include <gtest/gtest.h>

namespace vedr::telemetry {
namespace {

FlowKey fk(int i) { return FlowKey{i, 100, static_cast<std::uint16_t>(i), 1}; }

TEST(PortTelemetry, CountsFlows) {
  PortTelemetry t;
  t.on_enqueue(fk(1), 4096, 100);
  t.on_enqueue(fk(1), 4096, 200);
  t.on_enqueue(fk(2), 4096, 300);
  const auto r = t.snapshot(PortRef{9, 0}, 400, 0);
  ASSERT_EQ(r.flows.size(), 2u);
  std::int64_t total = 0;
  for (const auto& fe : r.flows) total += fe.pkts;
  EXPECT_EQ(total, 3);
  EXPECT_EQ(r.qdepth_pkts, 3);
  EXPECT_EQ(r.qdepth_bytes, 3 * 4096);
}

TEST(PortTelemetry, QueueAheadMatrixExact) {
  PortTelemetry t;
  // f1 enqueues two packets, then f2 enqueues one: f2 waits behind 2 of f1.
  t.on_enqueue(fk(1), 100, 1);
  t.on_enqueue(fk(1), 100, 2);
  t.on_enqueue(fk(2), 100, 3);
  // f1 enqueues again behind f2's single packet.
  t.on_enqueue(fk(1), 100, 4);
  const auto r = t.snapshot(PortRef{9, 0}, 10, 0);

  std::int64_t w_f2_f1 = 0, w_f1_f2 = 0;
  for (const auto& we : r.waits) {
    if (we.waiter == fk(2) && we.ahead == fk(1)) w_f2_f1 = we.weight;
    if (we.waiter == fk(1) && we.ahead == fk(2)) w_f1_f2 = we.weight;
  }
  EXPECT_EQ(w_f2_f1, 2);
  EXPECT_EQ(w_f1_f2, 1);
}

TEST(PortTelemetry, DequeueReducesDepthAndAheadCounts) {
  PortTelemetry t;
  t.on_enqueue(fk(1), 100, 1);
  t.on_dequeue(fk(1), 100);
  t.on_enqueue(fk(2), 100, 2);  // queue empty: no wait recorded
  const auto r = t.snapshot(PortRef{9, 0}, 10, 0);
  EXPECT_EQ(r.qdepth_pkts, 1);
  EXPECT_TRUE(r.waits.empty());
}

TEST(PortTelemetry, WindowFiltersStaleFlows) {
  PortTelemetry t;
  t.on_enqueue(fk(1), 100, 1000);
  t.on_enqueue(fk(2), 100, 9000);
  const auto r = t.snapshot(PortRef{9, 0}, 10000, /*since=*/5000);
  ASSERT_EQ(r.flows.size(), 1u);
  EXPECT_EQ(r.flows[0].flow, fk(2));
}

TEST(PortTelemetry, WindowFiltersStaleWaits) {
  PortTelemetry t;
  t.on_enqueue(fk(1), 100, 1000);
  t.on_enqueue(fk(2), 100, 1500);  // old wait f2-behind-f1
  t.on_dequeue(fk(1), 100);
  t.on_dequeue(fk(2), 100);
  t.on_enqueue(fk(3), 100, 9000);
  const auto r = t.snapshot(PortRef{9, 0}, 10000, 5000);
  EXPECT_TRUE(r.waits.empty());
}

TEST(PortTelemetry, PauseAccounting) {
  PortTelemetry t;
  EXPECT_FALSE(t.paused());
  t.on_pause(1000);
  EXPECT_TRUE(t.paused());
  EXPECT_EQ(t.total_pause_time(1500), 500);
  t.on_resume(2000);
  EXPECT_FALSE(t.paused());
  EXPECT_EQ(t.total_pause_time(5000), 1000);
  t.on_pause(6000);
  t.on_resume(6500);
  EXPECT_EQ(t.total_pause_time(7000), 1500);
}

TEST(PortTelemetry, PauseIdempotent) {
  PortTelemetry t;
  t.on_pause(100);
  t.on_pause(200);  // redundant
  t.on_resume(300);
  t.on_resume(400);  // redundant
  EXPECT_EQ(t.total_pause_time(1000), 200);
}

TEST(PortTelemetry, PausedWithinWindow) {
  PortTelemetry t;
  t.on_pause(1000);
  t.on_resume(2000);
  EXPECT_TRUE(t.paused_within(2500, 1000));   // ended 500 ago
  EXPECT_FALSE(t.paused_within(10000, 1000)); // long over
  t.on_pause(20000);
  EXPECT_TRUE(t.paused_within(30000, 1000));  // still paused
}

TEST(PortTelemetry, SnapshotIncludesOpenPauseInterval) {
  PortTelemetry t;
  t.on_pause(1000);
  const auto r = t.snapshot(PortRef{9, 0}, 2000, 0);
  ASSERT_EQ(r.pauses.size(), 1u);
  EXPECT_EQ(r.pauses[0].start, 1000);
  EXPECT_EQ(r.pauses[0].end, sim::kNever);
  EXPECT_TRUE(r.currently_paused);
  EXPECT_EQ(r.total_pause_time, 1000);
}

TEST(PortTelemetry, PruneDropsIdleStateWithoutChangingWindowedSnapshots) {
  PortTelemetry t;
  // Old co-resident pair: f1 then f2 behind it, both drained long ago.
  t.on_enqueue(fk(1), 100, 1000);
  t.on_enqueue(fk(2), 100, 1500);
  t.on_dequeue(fk(1), 100);
  t.on_dequeue(fk(2), 100);
  // Recent activity that every windowed snapshot must keep seeing.
  t.on_enqueue(fk(3), 100, 90000);
  t.on_enqueue(fk(4), 100, 90500);

  const std::int64_t before = t.state_bytes();
  const auto pre = t.snapshot(PortRef{9, 0}, 100000, 50000);
  // Retention 20000 at now=100000: cutoff 80000, far after the stale pair.
  t.prune(100000, 20000);
  const auto post = t.snapshot(PortRef{9, 0}, 100000, 50000);

  EXPECT_LT(t.state_bytes(), before) << "prune removed no state";
  ASSERT_EQ(pre.flows.size(), post.flows.size());
  for (std::size_t i = 0; i < pre.flows.size(); ++i) {
    EXPECT_EQ(pre.flows[i].flow, post.flows[i].flow);
    EXPECT_EQ(pre.flows[i].pkts, post.flows[i].pkts);
  }
  ASSERT_EQ(pre.waits.size(), post.waits.size());
  for (std::size_t i = 0; i < pre.waits.size(); ++i) {
    EXPECT_EQ(pre.waits[i].waiter, post.waits[i].waiter);
    EXPECT_EQ(pre.waits[i].weight, post.waits[i].weight);
  }
}

TEST(PortTelemetry, PruneDropsClosedPauseEpisodesKeepsAccumulatedTime) {
  PortTelemetry t;
  t.on_pause(1000);
  t.on_resume(2000);
  t.on_pause(95000);  // still open across the prune

  t.prune(100000, 20000);

  // The stale closed episode is gone from state, but its contribution to
  // total pause time was folded into the accumulator long before.
  EXPECT_EQ(t.total_pause_time(100000), 1000 + 5000);
  const auto r = t.snapshot(PortRef{9, 0}, 100000, 0);
  ASSERT_EQ(r.pauses.size(), 1u);
  EXPECT_EQ(r.pauses[0].start, 95000);
  EXPECT_TRUE(t.paused_within(100000, 1000));
}

TEST(SwitchTelemetry, StateBytesSumsPortsAndShrinksOnPrune) {
  SwitchTelemetry t(7, 4);
  const std::int64_t empty = t.state_bytes();
  t.port(0).on_enqueue(fk(1), 100, 1000);
  t.port(0).on_enqueue(fk(2), 100, 1100);
  t.port(0).on_dequeue(fk(1), 100);
  t.port(0).on_dequeue(fk(2), 100);
  t.port(1).on_enqueue(fk(3), 100, 1000);
  t.port(1).on_dequeue(fk(3), 100);
  EXPECT_GT(t.state_bytes(), empty);
  t.prune(1000000, 1000);
  EXPECT_EQ(t.state_bytes(), empty) << "all state was idle past retention";
}

TEST(PortTelemetry, SketchBackendReportsTruncationAndBoundedFlows) {
  TelemetryParams p;
  p.backend = TelemetryBackend::kSketch;
  p.sketch_width = 64;
  p.sketch_depth = 2;
  p.topk = 4;
  PortTelemetry t(p);
  for (int i = 0; i < 12; ++i) {
    for (int j = 0; j <= i; ++j) t.on_enqueue(fk(i), 100, 100 * (i + 1) + j);
  }
  const auto r = t.snapshot(PortRef{9, 0}, 10000, 0);
  EXPECT_LE(r.flows.size(), 4u);
  EXPECT_TRUE(r.truncated);
  // Exact lane on the same stream is untruncated and complete.
  PortTelemetry exact;
  for (int i = 0; i < 12; ++i) {
    for (int j = 0; j <= i; ++j) exact.on_enqueue(fk(i), 100, 100 * (i + 1) + j);
  }
  const auto re = exact.snapshot(PortRef{9, 0}, 10000, 0);
  EXPECT_EQ(re.flows.size(), 12u);
  EXPECT_FALSE(re.truncated);
}

TEST(SwitchTelemetry, MetersPerPortPair) {
  SwitchTelemetry t(7, 4);
  t.on_forward(0, 2, 1000);
  t.on_forward(0, 2, 500);
  t.on_forward(1, 2, 250);
  EXPECT_EQ(t.meter(0, 2), 1500);
  EXPECT_EQ(t.meter(1, 2), 250);
  const auto r = t.port_snapshot(2, 100, 0);
  EXPECT_EQ(r.meters.size(), 2u);
}

TEST(SwitchTelemetry, LocallyOriginatedNotMetered) {
  SwitchTelemetry t(7, 4);
  t.on_forward(net::kInvalidPort, 2, 1000);
  EXPECT_EQ(t.port_snapshot(2, 100, 0).meters.size(), 0u);
}

TEST(SwitchTelemetry, CausesFilteredByPortAndTime) {
  SwitchTelemetry t(7, 4);
  PauseCauseReport c1;
  c1.ingress_port = PortRef{7, 1};
  c1.time = 1000;
  t.record_pause_cause(c1);
  PauseCauseReport c2 = c1;
  c2.time = 9000;
  t.record_pause_cause(c2);
  PauseCauseReport c3 = c1;
  c3.ingress_port = PortRef{7, 2};
  c3.time = 9500;
  t.record_pause_cause(c3);

  EXPECT_EQ(t.causes_for(1, 5000).size(), 1u);
  EXPECT_EQ(t.causes_for(1, 0).size(), 2u);
  EXPECT_EQ(t.causes_for(2, 0).size(), 1u);
  EXPECT_EQ(t.all_causes().size(), 3u);
}

TEST(Records, WireSizesAdditive) {
  SwitchReport r;
  r.switch_id = 1;
  const std::int64_t base = r.wire_size();
  EXPECT_EQ(base, WireCosts::kReportHeader);
  PortReport p;
  p.flows.resize(3);
  p.waits.resize(2);
  p.meters.resize(1);
  p.pauses.resize(1);
  r.ports.push_back(p);
  EXPECT_EQ(r.wire_size(), base + WireCosts::kPortHeader + 3 * WireCosts::kFlowEntry +
                               2 * WireCosts::kWaitEntry + WireCosts::kMeterEntry +
                               WireCosts::kPauseEvent);
  PauseCauseReport c;
  c.contributions.resize(2);
  r.causes.push_back(c);
  EXPECT_EQ(r.wire_size(), base + WireCosts::kPortHeader + 3 * WireCosts::kFlowEntry +
                               2 * WireCosts::kWaitEntry + WireCosts::kMeterEntry +
                               WireCosts::kPauseEvent + WireCosts::kPauseCause +
                               2 * WireCosts::kCauseContribution);
}

}  // namespace
}  // namespace vedr::telemetry
