#include <gtest/gtest.h>

#include "anomaly/injectors.h"
#include "baselines/full_polling.h"
#include "baselines/hawkeye.h"
#include "collective/runner.h"
#include "net/host.h"
#include "net/network.h"
#include "sim/simulator.h"

namespace vedr::baselines {
namespace {

struct Fixture {
  sim::Simulator sim;
  net::Topology topo;
  net::Network net;
  std::vector<net::NodeId> participants;

  Fixture() : topo(net::make_fat_tree(4, net::NetConfig{})), net(sim, topo, net::NetConfig{}) {
    const auto hosts = topo.hosts();
    participants.assign(hosts.begin(), hosts.begin() + 4);
  }

  collective::CollectivePlan plan(std::int64_t bytes = 1024 * 1024) {
    return collective::CollectivePlan::ring(0, collective::OpType::kAllGather, participants,
                                            bytes);
  }
};

TEST(Hawkeye, MaxThresholdAtLeastMinThreshold) {
  Fixture f;
  auto plan = f.plan();
  collective::CollectiveRunner runner(f.net, f.plan());
  HawkeyeConfig max_cfg;
  max_cfg.use_max_rtt = true;
  HawkeyeConfig min_cfg;
  min_cfg.use_max_rtt = false;
  // Construct sequentially: each re-wires the listeners, which is fine for
  // threshold inspection.
  Hawkeye hk_max(f.net, plan, max_cfg);
  Hawkeye hk_min(f.net, plan, min_cfg);
  EXPECT_GE(hk_max.threshold(), hk_min.threshold());
  EXPECT_GT(hk_min.threshold(), 0);
}

TEST(Hawkeye, TriggersUnderContentionAndDiagnoses) {
  Fixture f;
  collective::CollectiveRunner runner(f.net, f.plan(2 * 1024 * 1024));
  Hawkeye hawkeye(f.net, runner.plan(), {});
  const net::FlowKey bg = anomaly::background_key(0, f.topo.hosts()[12], f.participants[1]);
  anomaly::inject_flow(f.net, {bg, 16 * 1024 * 1024, 0});
  runner.start(0);
  f.sim.run();
  ASSERT_TRUE(runner.done());
  EXPECT_GT(hawkeye.polls_sent(), 0);
  const auto d = hawkeye.diagnose();
  EXPECT_TRUE(d.detects_flow(bg));
  // No collective awareness: no waiting graph, no critical path.
  EXPECT_TRUE(d.critical_path.empty());
}

TEST(Hawkeye, RetentionDropsWithinWindow) {
  Fixture f;
  collective::CollectiveRunner runner(f.net, f.plan(2 * 1024 * 1024));
  HawkeyeConfig cfg;
  cfg.use_max_rtt = false;  // MinR triggers aggressively
  Hawkeye hawkeye(f.net, runner.plan(), cfg);
  const net::FlowKey bg = anomaly::background_key(0, f.topo.hosts()[12], f.participants[1]);
  anomaly::inject_flow(f.net, {bg, 16 * 1024 * 1024, 0});
  runner.start(0);
  f.sim.run();
  EXPECT_GT(hawkeye.reports_dropped(), 0u)
      << "MinR's redundant triggering must hit the 50us retention filter";
  EXPECT_GT(hawkeye.reports_kept(), 0u);
}

TEST(Hawkeye, MinRPollsMoreThanMaxR) {
  auto run = [](bool use_max) {
    Fixture f;
    collective::CollectiveRunner runner(f.net, f.plan(2 * 1024 * 1024));
    HawkeyeConfig cfg;
    cfg.use_max_rtt = use_max;
    Hawkeye hawkeye(f.net, runner.plan(), cfg);
    const net::FlowKey bg =
        anomaly::background_key(0, f.topo.hosts()[12], f.participants[1]);
    anomaly::inject_flow(f.net, {bg, 16 * 1024 * 1024, 0});
    runner.start(0);
    f.sim.run();
    return hawkeye.polls_sent();
  };
  EXPECT_GE(run(false), run(true));
}

TEST(FullPolling, SweepsAllSwitchesPeriodically) {
  Fixture f;
  collective::CollectiveRunner runner(f.net, f.plan());
  FullPolling fp(f.net, runner.plan(), 100 * sim::kMicrosecond);
  fp.start(2 * sim::kMillisecond);
  runner.start(0);
  f.sim.run();
  EXPECT_GE(fp.sweeps(), 10u);
  // 20 switches per sweep.
  EXPECT_EQ(f.net.stats().counter("overhead.report_count"),
            static_cast<std::int64_t>(fp.sweeps()) * 20);
  EXPECT_GT(f.net.stats().counter("overhead.telemetry_bytes"), 0);
}

TEST(FullPolling, StopsAtDeadline) {
  Fixture f;
  collective::CollectiveRunner runner(f.net, f.plan());
  FullPolling fp(f.net, runner.plan(), 100 * sim::kMicrosecond);
  fp.start(1 * sim::kMillisecond);
  runner.start(0);
  f.sim.run();
  EXPECT_LE(fp.sweeps(), 11u);
}

TEST(FullPolling, DiagnosesContentionWithoutPolls) {
  Fixture f;
  collective::CollectiveRunner runner(f.net, f.plan(2 * 1024 * 1024));
  FullPolling fp(f.net, runner.plan(), 100 * sim::kMicrosecond);
  fp.start(60 * sim::kMillisecond);
  const net::FlowKey bg = anomaly::background_key(0, f.topo.hosts()[12], f.participants[1]);
  anomaly::inject_flow(f.net, {bg, 16 * 1024 * 1024, 0});
  runner.start(0);
  f.sim.run();
  ASSERT_TRUE(runner.done());
  EXPECT_TRUE(fp.diagnose().detects_flow(bg));
  EXPECT_EQ(f.net.stats().counter("overhead.poll_bytes"), 0)
      << "full polling pushes reports autonomously, no polling queries";
}

}  // namespace
}  // namespace vedr::baselines
