// Live observability surface of the serve daemon (DESIGN.md §15): the
// TailSampler retain rule, the LiveMetrics gauge schema, and an end-to-end
// Server run asserting windowed gauges, uptime/build_info, tail counters,
// and flight-recorder session events all show up where the scrapers look.
#include "serve/live_metrics.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "obs/flight.h"
#include "obs/metrics.h"
#include "replay/trace_reader.h"
#include "serve/server.h"
#include "serve/verdict.h"

namespace vedr::serve {
namespace {

constexpr std::uint64_t kSec = 1'000'000'000ULL;

// --- TailSampler ------------------------------------------------------------

TEST(TailSampler, ColdStartRetainsNothing) {
  TailSampler tail(/*quantile=*/0.99, /*min_count=*/32);
  const std::uint64_t now = 5 * kSec;
  // 31 samples: one short of min_count, so even the largest latency seen so
  // far is not retained and the threshold reads 0 (quantile not meaningful).
  for (int i = 0; i < 31; ++i) EXPECT_FALSE(tail.consider(1'000'000, now));
  EXPECT_EQ(tail.threshold_ns(now), 0);
  EXPECT_EQ(tail.considered(), 31u);
  EXPECT_EQ(tail.retained(), 0u);
}

TEST(TailSampler, WarmWindowRetainsOnlyTheTail) {
  TailSampler tail(/*quantile=*/0.99, /*min_count=*/32);
  const std::uint64_t now = 5 * kSec;
  // 100 equal samples of 1000ns: every sample lands in the log2 bucket whose
  // upper edge is 1023, so the rolling p99 threshold becomes 1023.
  for (int i = 0; i < 100; ++i) tail.consider(1000, now);
  EXPECT_EQ(tail.threshold_ns(now), 1023);

  EXPECT_TRUE(tail.consider(1'000'000, now)) << "an outlier above p99 is retained";
  EXPECT_FALSE(tail.consider(10, now)) << "a fast step is never retained";
  EXPECT_EQ(tail.considered(), 102u);
  EXPECT_EQ(tail.retained(), 1u);
}

// --- LiveMetrics gauge schema -----------------------------------------------

TEST(LiveMetrics, AppendGaugesEmitsTheFullWindowedSchema) {
  LiveMetrics live;
  const std::uint64_t now = 5 * kSec;
  live.step_diagnose_ns.record(4000, now);
  live.queue_depth.record(3, now);
  live.queue_depth_peak.record(7, now);
  live.records.add(500, now);
  live.verdicts.add(50, now);
  live.record_tenant_records("tenant-a", 500, now);

  obs::MetricsSnapshot snap;
  live.append_gauges(snap, now);
  // 8 fixed series + 1 tenant series, once per window (10s and 60s).
  EXPECT_EQ(snap.gauges.size(), 2u * 9u);

  auto find = [&snap](const std::string& name, const std::string& window) -> double {
    for (const obs::GaugeSeries& g : snap.gauges) {
      const auto w = g.labels.find("window");
      if (g.name == name && w != g.labels.end() && w->second == window) return g.value;
    }
    ADD_FAILURE() << name << "{window=" << window << "} missing";
    return -1.0;
  };
  // 500 records over a 10s window = 50/s (full-window denominator).
  EXPECT_DOUBLE_EQ(find("serve.window.records_per_sec", "10s"), 50.0);
  EXPECT_DOUBLE_EQ(find("serve.window.tenant_records_per_sec", "10s"), 50.0);
  EXPECT_DOUBLE_EQ(find("serve.window.verdicts_per_sec", "60s"), 50.0 / 60.0);
  EXPECT_EQ(find("serve.window.step_diagnose_count", "10s"), 1.0);
  EXPECT_EQ(find("serve.window.queue_depth_peak", "60s"), 7.0);
  // p50/p99 report the log2 bucket upper edge of the recorded sample.
  EXPECT_EQ(find("serve.window.step_diagnose_p99_ns", "10s"), 4095.0);
  EXPECT_EQ(find("serve.window.queue_depth_p50", "10s"), 3.0);
}

// --- end-to-end through a Server --------------------------------------------

class NullSink : public VerdictSink {
 public:
  void on_verdict(const std::string&) override {}
};

TEST(LiveMetrics, ServerExposesWindowedGaugesUptimeBuildInfoAndFlightEvents) {
  NullSink sink;
  ServerConfig cfg;
  cfg.shards = 2;
  cfg.roll_interval_ns = 0;  // drive poll_windows() by hand
  Server server(cfg, &sink);
  obs::flight_reset();  // isolate this run's events

  const std::uint64_t sid = server.open_session("tenant-a");
  replay::TraceReader reader(std::string(VEDR_REPLAY_CORPUS_DIR) + "/contention.vtrc");
  replay::TraceRecord rec;
  std::uint64_t offset = reader.bytes_read();
  while (reader.next(rec) == replay::TraceStatus::kOk) {
    ASSERT_TRUE(server.offer(sid, rec, offset));
    offset = reader.bytes_read();
  }
  server.poll_windows();  // sample queue depth while the session is active
  server.close_session(sid, replay::TraceError{}, reader.bytes_read());
  server.wait_all_finished();
  server.poll_windows();

  const obs::MetricsSnapshot snap = server.metrics_snapshot();
  auto gauge = [&snap](const std::string& name) -> const obs::GaugeSeries* {
    for (const obs::GaugeSeries& g : snap.gauges)
      if (g.name == name) return &g;
    return nullptr;
  };

  // Windowed diagnose latency saw every step (60s window covers the run).
  const obs::GaugeSeries* count = nullptr;
  for (const obs::GaugeSeries& g : snap.gauges)
    if (g.name == "serve.window.step_diagnose_count" &&
        g.labels.at("window") == "60s")
      count = &g;
  ASSERT_NE(count, nullptr);
  EXPECT_GT(count->value, 0.0);

  const obs::GaugeSeries* uptime = gauge("uptime_seconds");
  ASSERT_NE(uptime, nullptr);
  EXPECT_GE(uptime->value, 0.0);
  const obs::GaugeSeries* build = gauge("build_info");
  ASSERT_NE(build, nullptr);
  EXPECT_EQ(build->value, 1.0);
  EXPECT_FALSE(build->labels.at("version").empty());
  EXPECT_FALSE(build->labels.at("compiler").empty());

  // Every diagnose latency was fed to the tail sampler, and the counters
  // mirror onto the snapshot for scrapers.
  EXPECT_GT(server.tail_sampler().considered(), 0u);
  EXPECT_EQ(snap.counters.at("serve.tail_considered"),
            static_cast<std::int64_t>(server.tail_sampler().considered()));

  // Prometheus rendering: windowed series with labels, plus the satellite
  // gauges under their conventional names.
  const std::string prom = server.prometheus();
  EXPECT_NE(prom.find("vedr_uptime_seconds"), std::string::npos);
  EXPECT_NE(prom.find("vedr_build_info{"), std::string::npos);
  EXPECT_NE(prom.find("vedr_serve_window_step_diagnose_p99_ns{"), std::string::npos);
  EXPECT_NE(prom.find("window=\"10s\""), std::string::npos);
  EXPECT_NE(prom.find("tenant=\"tenant-a\""), std::string::npos);

  // The flight recorder captured the session lifecycle.
  const std::string flight = obs::flight_json();
  EXPECT_NE(flight.find("open id="), std::string::npos) << flight;
  EXPECT_NE(flight.find("close id="), std::string::npos) << flight;

  server.shutdown();
  obs::flight_reset();
}

}  // namespace
}  // namespace vedr::serve
