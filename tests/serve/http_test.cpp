#include "serve/http.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <cstring>
#include <string>

namespace vedr::serve {
namespace {

/// One-shot HTTP/1.0 GET against loopback; returns the raw response.
std::string http_get(int port, const std::string& request_line) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0)
      << std::strerror(errno);
  const std::string req = request_line + "\r\nHost: localhost\r\n\r\n";
  EXPECT_EQ(::send(fd, req.data(), req.size(), 0), static_cast<ssize_t>(req.size()));
  std::string resp;
  char buf[2048];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof buf, 0)) > 0) resp.append(buf, static_cast<std::size_t>(n));
  ::close(fd);
  return resp;
}

TEST(HttpListener, ServesHandlerResponsesOnEphemeralPort) {
  HttpListener http([](const std::string& path) {
    HttpResponse r;
    if (path == "/healthz") {
      r.body = "ok\n";
    } else if (path == "/echo") {
      r.content_type = "application/json";
      r.body = "{\"path\":\"/echo\"}";
    } else {
      r.status = 404;
      r.body = "nope\n";
    }
    return r;
  });
  std::string err;
  ASSERT_TRUE(http.start(0, &err)) << err;
  ASSERT_GT(http.port(), 0);  // kernel-assigned, read back

  const std::string health = http_get(http.port(), "GET /healthz HTTP/1.0");
  EXPECT_NE(health.find("HTTP/1.0 200 OK"), std::string::npos) << health;
  EXPECT_NE(health.find("Content-Length: 3"), std::string::npos) << health;
  EXPECT_NE(health.find("\r\n\r\nok\n"), std::string::npos) << health;

  const std::string echo = http_get(http.port(), "GET /echo HTTP/1.0");
  EXPECT_NE(echo.find("Content-Type: application/json"), std::string::npos) << echo;
  EXPECT_NE(echo.find("{\"path\":\"/echo\"}"), std::string::npos) << echo;

  const std::string missing = http_get(http.port(), "GET /none HTTP/1.0");
  EXPECT_NE(missing.find("HTTP/1.0 404 Not Found"), std::string::npos) << missing;

  const std::string post = http_get(http.port(), "POST /healthz HTTP/1.0");
  EXPECT_NE(post.find("HTTP/1.0 405"), std::string::npos) << post;

  http.stop();
  http.stop();  // idempotent
}

TEST(HttpListener, SequentialRequestsSurviveStopStartCycle) {
  int calls = 0;
  HttpListener http([&calls](const std::string&) {
    HttpResponse r;
    r.body = "n=" + std::to_string(++calls) + "\n";
    return r;
  });
  std::string err;
  ASSERT_TRUE(http.start(0, &err)) << err;
  for (int i = 1; i <= 3; ++i) {
    const std::string resp = http_get(http.port(), "GET / HTTP/1.0");
    EXPECT_NE(resp.find("n=" + std::to_string(i) + "\n"), std::string::npos) << resp;
  }
  http.stop();
}

}  // namespace
}  // namespace vedr::serve
