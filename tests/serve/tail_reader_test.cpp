// Tail-mode TraceReader coverage (the serve transport contract): a partial
// trailing frame — the writer mid-append — must surface as the retryable
// kNeedMoreData, never latch, and resume cleanly once the bytes arrive.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "replay/trace_reader.h"

namespace vedr::replay {
namespace {

std::string corpus_path(const std::string& name) {
  return std::string(VEDR_REPLAY_CORPUS_DIR) + "/" + name + ".vtrc";
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

void append_file(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::app);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

/// Full-file frame count and frame boundaries via the one-shot reader.
std::vector<std::uint64_t> frame_boundaries(const std::string& path, int* frames_out) {
  TraceReader reader(path);
  std::vector<std::uint64_t> bounds;
  TraceRecord rec;
  int frames = 0;
  bounds.push_back(reader.bytes_read());
  while (reader.next(rec) == TraceStatus::kOk) {
    ++frames;
    bounds.push_back(reader.bytes_read());
  }
  EXPECT_TRUE(reader.saw_footer());
  *frames_out = frames;
  return bounds;
}

/// Feeds the trace to a tail reader in `chunk`-byte appends, covering every
/// truncation point in [0, size) in one pass: after each append, next() is
/// pumped until it reports kNeedMoreData (or the stream completes). The
/// reader must never latch an error and must decode exactly the one-shot
/// reader's frame count.
void byte_feed_walk(const std::string& trace, std::size_t chunk) {
  const std::string bytes = read_file(corpus_path(trace));
  ASSERT_FALSE(bytes.empty());
  int expect_frames = 0;
  frame_boundaries(corpus_path(trace), &expect_frames);
  ASSERT_GT(expect_frames, 0);

  const std::string path = testing::TempDir() + "tail_feed_" + trace + ".vtrc";
  write_file(path, std::string());
  TraceReader reader(path, /*tail=*/true);
  ASSERT_TRUE(reader.ok()) << reader.error().str();

  int frames = 0;
  TraceRecord rec;
  for (std::size_t off = 0; off < bytes.size(); off += chunk) {
    append_file(path, bytes.substr(off, chunk));
    TraceStatus status;
    while ((status = reader.next(rec)) == TraceStatus::kOk) ++frames;
    if (off + chunk < bytes.size()) {
      ASSERT_EQ(status, TraceStatus::kNeedMoreData)
          << "after " << off + chunk << " of " << bytes.size() << " bytes: "
          << to_string(status) << " (" << reader.error().str() << ")";
      ASSERT_TRUE(reader.ok()) << "kNeedMoreData must not latch";
    } else {
      ASSERT_EQ(status, TraceStatus::kEof);
    }
  }
  EXPECT_EQ(frames, expect_frames);
  EXPECT_TRUE(reader.saw_footer());
  EXPECT_EQ(reader.next(rec), TraceStatus::kEof);  // kEof is sticky, not latched
  std::remove(path.c_str());
}

TEST(TailReader, EveryTruncationPointIsRetryable) {
  // chunk=1 covers every byte boundary: mid-header, mid-prefix, mid-payload,
  // mid-CRC. Contention is the largest corpus trace; one pass is plenty.
  byte_feed_walk("contention", 1);
}

TEST(TailReader, ChunkedFeedResumesAcrossAllScenarios) {
  for (const char* name : {"incast", "storm", "backpressure"})
    byte_feed_walk(name, 257);  // prime-sized chunks never align with frames
}

TEST(TailReader, TruncateThenExtendResumesAtFrameBoundary) {
  const std::string bytes = read_file(corpus_path("incast"));
  int expect_frames = 0;
  const std::vector<std::uint64_t> bounds =
      frame_boundaries(corpus_path("incast"), &expect_frames);
  ASSERT_GT(bounds.size(), 4u);

  // Cut inside the third frame's payload.
  const std::size_t cut = static_cast<std::size_t>(bounds[3]) - 3;
  const std::string path = testing::TempDir() + "tail_truncate.vtrc";
  write_file(path, bytes.substr(0, cut));

  TraceReader reader(path, /*tail=*/true);
  TraceRecord rec;
  int frames = 0;
  TraceStatus status;
  while ((status = reader.next(rec)) == TraceStatus::kOk) ++frames;
  EXPECT_EQ(frames, 2);  // the two complete frames before the cut
  EXPECT_EQ(status, TraceStatus::kNeedMoreData);
  // Retrying without new bytes stays retryable — no latch, no progress.
  EXPECT_EQ(reader.next(rec), TraceStatus::kNeedMoreData);
  EXPECT_TRUE(reader.ok());
  EXPECT_EQ(reader.bytes_read(), bounds[2]);  // rewound to the frame boundary

  append_file(path, bytes.substr(cut));
  while ((status = reader.next(rec)) == TraceStatus::kOk) ++frames;
  EXPECT_EQ(status, TraceStatus::kEof);
  EXPECT_EQ(frames, expect_frames);
  EXPECT_TRUE(reader.saw_footer());
  std::remove(path.c_str());
}

TEST(TailReader, PartialHeaderIsRetryable) {
  const std::string bytes = read_file(corpus_path("storm"));
  const std::string path = testing::TempDir() + "tail_header.vtrc";
  write_file(path, bytes.substr(0, 5));  // mid-file-header

  TraceReader reader(path, /*tail=*/true);
  ASSERT_TRUE(reader.ok());  // constructor must not latch kBadHeader
  TraceRecord rec;
  EXPECT_EQ(reader.next(rec), TraceStatus::kNeedMoreData);

  append_file(path, bytes.substr(5));
  int frames = 0;
  while (reader.next(rec) == TraceStatus::kOk) ++frames;
  EXPECT_GT(frames, 0);
  EXPECT_TRUE(reader.saw_footer());
  std::remove(path.c_str());
}

TEST(TailReader, NonTailReaderStillReportsTruncation) {
  const std::string bytes = read_file(corpus_path("backpressure"));
  const std::string path = testing::TempDir() + "nontail_truncate.vtrc";
  write_file(path, bytes.substr(0, bytes.size() - 5));

  TraceReader reader(path);  // batch mode: truncation is terminal
  TraceRecord rec;
  TraceStatus status;
  while ((status = reader.next(rec)) == TraceStatus::kOk) {
  }
  EXPECT_EQ(status, TraceStatus::kTruncated);
  EXPECT_FALSE(reader.ok());
  EXPECT_EQ(reader.next(rec), TraceStatus::kTruncated);  // latched
  std::remove(path.c_str());
}

TEST(TailReader, CorruptFrameIsTerminalEvenInTailMode) {
  std::string bytes = read_file(corpus_path("incast"));
  // Flip a byte inside the second frame's payload: a complete frame with a
  // bad CRC is corruption, not a writer lagging.
  int frames = 0;
  const std::vector<std::uint64_t> bounds =
      frame_boundaries(corpus_path("incast"), &frames);
  ASSERT_GT(bounds.size(), 3u);
  bytes[static_cast<std::size_t>(bounds[1]) + 7] ^= 0x40;
  const std::string path = testing::TempDir() + "tail_corrupt.vtrc";
  write_file(path, bytes);

  TraceReader reader(path, /*tail=*/true);
  TraceRecord rec;
  TraceStatus status;
  while ((status = reader.next(rec)) == TraceStatus::kOk) {
  }
  EXPECT_EQ(status, TraceStatus::kCrcMismatch);
  EXPECT_FALSE(reader.ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace vedr::replay
