#include "common/bounded_queue.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace vedr::common {
namespace {

TEST(BoundedQueue, FifoWithinCapacity) {
  BoundedQueue<int> q(4);
  EXPECT_EQ(q.capacity(), 4u);
  EXPECT_TRUE(q.empty());
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(q.try_push(i));
  EXPECT_EQ(q.size(), 4u);
  int v = -1;
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(q.try_pop(v));
    EXPECT_EQ(v, i);
  }
  EXPECT_FALSE(q.try_pop(v));
}

TEST(BoundedQueue, TryPushAccountsDrops) {
  BoundedQueue<int> q(2);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  EXPECT_FALSE(q.try_push(3));
  EXPECT_FALSE(q.try_push(4));
  const QueueStats s = q.stats();
  EXPECT_EQ(s.pushed, 2u);
  EXPECT_EQ(s.dropped, 2u);
  EXPECT_EQ(s.size, 2u);
  EXPECT_EQ(s.high_watermark, 2u);
}

TEST(BoundedQueue, PushBlocksUntilSpaceAndCountsBlocked) {
  BoundedQueue<int> q(1);
  ASSERT_TRUE(q.push(1));
  std::thread producer([&q] { EXPECT_TRUE(q.push(2)); });
  // The producer is (about to be) blocked on the full queue; popping must
  // release it.
  int v = 0;
  EXPECT_TRUE(q.pop(v));
  EXPECT_EQ(v, 1);
  producer.join();
  EXPECT_TRUE(q.try_pop(v));
  EXPECT_EQ(v, 2);
  const QueueStats s = q.stats();
  EXPECT_EQ(s.pushed, 2u);
  EXPECT_EQ(s.dropped, 0u);
}

TEST(BoundedQueue, CloseWakesBlockedProducerAndKeepsItemsPoppable) {
  BoundedQueue<int> q(1);
  ASSERT_TRUE(q.push(7));
  std::thread producer([&q] { EXPECT_FALSE(q.push(8)); });  // blocked, then closed
  std::thread closer([&q] { q.close(); });
  producer.join();
  closer.join();
  EXPECT_FALSE(q.try_push(9));  // closed: rejected without a drop
  int v = 0;
  EXPECT_TRUE(q.pop(v));  // close-then-drain: queued item survives
  EXPECT_EQ(v, 7);
  EXPECT_FALSE(q.pop(v));  // closed and drained: end of stream
  EXPECT_EQ(q.stats().dropped, 0u);
}

TEST(BoundedQueue, ConcurrentProducersLoseNothingUnderBackpressure) {
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 500;
  BoundedQueue<int> q(8);  // far smaller than the item count: constant pressure
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, p] {
      for (int i = 0; i < kPerProducer; ++i)
        ASSERT_TRUE(q.push(p * kPerProducer + i));
    });
  }
  std::vector<int> seen(kProducers * kPerProducer, 0);
  std::thread consumer([&q, &seen] {
    int v = 0;
    for (int i = 0; i < kProducers * kPerProducer; ++i) {
      ASSERT_TRUE(q.pop(v));
      ++seen[static_cast<std::size_t>(v)];
    }
  });
  for (auto& t : producers) t.join();
  consumer.join();
  for (const int count : seen) EXPECT_EQ(count, 1);  // every item exactly once
  const QueueStats s = q.stats();
  EXPECT_EQ(s.pushed, static_cast<std::uint64_t>(kProducers * kPerProducer));
  EXPECT_EQ(s.popped, s.pushed);
  EXPECT_EQ(s.dropped, 0u);
  EXPECT_LE(s.high_watermark, q.capacity());
}

TEST(BoundedQueue, TakeHighWatermarkResetsToCurrentSize) {
  BoundedQueue<int> q(16);
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(q.push(i));
  int v = 0;
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(q.try_pop(v));

  // The peak since construction was 5, even though only 2 remain.
  EXPECT_EQ(q.take_high_watermark(), 5u);
  // Re-seeded with the *current* size, not zero: the occupancy that exists
  // right now was observed.
  EXPECT_EQ(q.take_high_watermark(), 2u);
  EXPECT_EQ(q.stats().high_watermark, 2u);

  ASSERT_TRUE(q.push(10));
  EXPECT_EQ(q.take_high_watermark(), 3u);

  // Draining below the seed does not retro-shrink the recorded peak.
  ASSERT_TRUE(q.try_pop(v));
  ASSERT_TRUE(q.try_pop(v));
  ASSERT_TRUE(q.try_pop(v));
  EXPECT_EQ(q.take_high_watermark(), 3u);
  EXPECT_EQ(q.take_high_watermark(), 0u);  // now truly empty
}

}  // namespace
}  // namespace vedr::common
