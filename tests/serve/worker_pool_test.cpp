#include "common/worker_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

namespace vedr::common {
namespace {

TEST(ParallelFor, EveryIndexExactlyOnce) {
  constexpr int kN = 200;
  std::vector<std::atomic<int>> hits(kN);
  WorkerPool::parallel_for(kN, 4, [&hits](int i) {
    hits[static_cast<std::size_t>(i)].fetch_add(1, std::memory_order_relaxed);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, MoreThreadsThanWork) {
  std::vector<std::atomic<int>> hits(3);
  WorkerPool::parallel_for(3, 64, [&hits](int i) {
    hits[static_cast<std::size_t>(i)].fetch_add(1, std::memory_order_relaxed);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, ZeroAndSingleThreadShapes) {
  int calls = 0;
  WorkerPool::parallel_for(0, 4, [&calls](int) { ++calls; });
  EXPECT_EQ(calls, 0);
  WorkerPool::parallel_for(5, 1, [&calls](int) { ++calls; });  // inline fast path
  EXPECT_EQ(calls, 5);
}

TEST(WorkerPool, PerShardFifoOrdering) {
  WorkerPool pool(3);
  EXPECT_EQ(pool.shards(), 3);
  constexpr int kPerShard = 100;
  std::vector<std::vector<int>> order(3);  // written only by the owning shard
  for (int i = 0; i < kPerShard; ++i)
    for (std::size_t sh = 0; sh < 3; ++sh)
      ASSERT_TRUE(pool.post(sh, [&order, sh, i] {
        order[sh].push_back(i);
      }));
  pool.drain();
  for (const auto& seq : order) {
    ASSERT_EQ(seq.size(), static_cast<std::size_t>(kPerShard));
    for (int i = 0; i < kPerShard; ++i) EXPECT_EQ(seq[static_cast<std::size_t>(i)], i);
  }
  pool.stop();
}

TEST(WorkerPool, DrainIsABarrier) {
  WorkerPool pool(2);
  std::atomic<int> done{0};
  for (int i = 0; i < 50; ++i)
    pool.post(static_cast<std::size_t>(i), [&done] {
      done.fetch_add(1, std::memory_order_relaxed);
    });
  pool.drain();
  EXPECT_EQ(done.load(), 50);  // everything posted before drain() has run
}

TEST(WorkerPool, StopRunsQueuedTasksAndRejectsNewOnes) {
  std::atomic<int> ran{0};
  WorkerPool pool(1);
  for (int i = 0; i < 20; ++i)
    pool.post(0, [&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
  pool.stop();
  EXPECT_EQ(ran.load(), 20);  // queued tasks finished before the join
  EXPECT_FALSE(pool.post(0, [] {}));
  pool.stop();  // idempotent
}

TEST(WorkerPool, ShardIndexWraps) {
  WorkerPool pool(2);
  std::atomic<int> ran{0};
  ASSERT_TRUE(pool.post(7, [&ran] { ran.fetch_add(1); }));  // 7 % 2 == shard 1
  pool.drain();
  EXPECT_EQ(ran.load(), 1);
}

}  // namespace
}  // namespace vedr::common
