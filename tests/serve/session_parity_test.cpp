// Verdict parity: the daemon's incremental per-step diagnosis path must land
// on exactly the batch replay diagnosis for every golden corpus trace — same
// JSON, and a footer digest match — no matter how the records were sliced.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "replay/collector.h"
#include "replay/trace_reader.h"
#include "serve/server.h"
#include "serve/tail_source.h"
#include "serve/verdict.h"

namespace vedr::serve {
namespace {

std::string corpus_path(const std::string& name) {
  return std::string(VEDR_REPLAY_CORPUS_DIR) + "/" + name + ".vtrc";
}

const std::vector<std::string>& corpus_names() {
  static const std::vector<std::string> kNames = {"contention", "incast", "storm",
                                                  "backpressure"};
  return kNames;
}

/// Thread-safe capture of every verdict line, for assertions after the fact.
class CaptureSink : public VerdictSink {
 public:
  void on_verdict(const std::string& line) override {
    common::MutexLock lock(mu_);
    lines_.push_back(line);
  }
  std::vector<std::string> lines() const {
    common::MutexLock lock(mu_);
    return lines_;
  }

 private:
  mutable common::Mutex mu_;
  std::vector<std::string> lines_ VEDR_GUARDED_BY(mu_);
};

replay::ReplayResult batch_replay(const std::string& name) {
  replay::TraceReader reader(corpus_path(name));
  replay::StreamingCollector collector;
  return collector.replay(reader);
}

int extract_int_field(const std::string& line, const std::string& key) {
  const std::size_t at = line.find("\"" + key + "\":");
  EXPECT_NE(at, std::string::npos) << key << " missing in: " << line;
  return std::atoi(line.c_str() + at + key.size() + 3);
}

void check_verdict_stream(const std::vector<std::string>& lines,
                          const replay::ReplayResult& batch, int expected_steps) {
  ASSERT_FALSE(lines.empty());

  // Step verdicts: one per step, strictly increasing, covering every step.
  int next_step = 0;
  for (std::size_t i = 0; i + 1 < lines.size(); ++i) {
    SCOPED_TRACE(lines[i]);
    ASSERT_NE(lines[i].find("\"type\":\"step\""), std::string::npos);
    EXPECT_EQ(extract_int_field(lines[i], "step"), next_step);
    ++next_step;
  }
  EXPECT_EQ(next_step, expected_steps);

  // Final verdict: identical diagnosis JSON to the batch path, digest match.
  const std::string& final_line = lines.back();
  ASSERT_NE(final_line.find("\"type\":\"final\""), std::string::npos) << final_line;
  EXPECT_NE(final_line.find("\"state\":\"finished\""), std::string::npos) << final_line;
  EXPECT_NE(final_line.find("\"digest_match\":true"), std::string::npos) << final_line;
  const std::string expect_tail = ",\"diagnosis\":" + batch.diagnosis_json + "}";
  ASSERT_GE(final_line.size(), expect_tail.size());
  EXPECT_EQ(final_line.substr(final_line.size() - expect_tail.size()), expect_tail)
      << "daemon final diagnosis diverged from batch replay";
}

/// Drives one corpus trace through a Server by offering decoded records
/// directly (the bench's shape) and checks parity against batch replay.
void run_direct_parity(const std::string& name, int shards, std::size_t queue_cap) {
  SCOPED_TRACE(name);
  const replay::ReplayResult batch = batch_replay(name);
  ASSERT_TRUE(batch.ok) << batch.error.str();
  ASSERT_TRUE(batch.digest_matches);

  CaptureSink sink;
  ServerConfig cfg;
  cfg.shards = shards;
  cfg.session.queue_capacity = queue_cap;
  Server server(cfg, &sink);
  const std::uint64_t sid = server.open_session(name);

  replay::TraceReader reader(corpus_path(name));
  replay::TraceRecord rec;
  std::uint64_t offset = reader.bytes_read();
  int max_step = -1;
  while (reader.next(rec) == replay::TraceStatus::kOk) {
    if (rec.type == replay::RecordType::kStepRecord)
      max_step = std::max(max_step, std::get<collective::StepRecord>(rec.payload).step);
    ASSERT_TRUE(server.offer(sid, rec, offset));
    offset = reader.bytes_read();
  }
  server.close_session(sid, replay::TraceError{}, reader.bytes_read());
  server.wait_all_finished();

  const Session* session = server.find_session(sid);
  ASSERT_NE(session, nullptr);
  EXPECT_EQ(session->state(), SessionState::kFinished);
  EXPECT_TRUE(session->digest_matched());
  EXPECT_EQ(session->queue_stats().dropped, 0u);
  EXPECT_EQ(session->steps_closed(), max_step);

  check_verdict_stream(sink.lines(), batch, max_step + 1);
  server.shutdown();
}

TEST(SessionParity, EveryCorpusTraceMatchesBatchReplay) {
  for (const auto& name : corpus_names()) run_direct_parity(name, 2, 1024);
}

TEST(SessionParity, TinyQueueBackpressureChangesNothing) {
  // Capacity 2 forces constant blocking between producer and pump; the
  // verdict stream must be byte-identical anyway.
  run_direct_parity("incast", 1, 2);
}

TEST(SessionParity, TailSourceTransportReachesSameVerdict) {
  const replay::ReplayResult batch = batch_replay("storm");
  ASSERT_TRUE(batch.ok);

  CaptureSink sink;
  ServerConfig cfg;
  Server server(cfg, &sink);
  FileTailSource source(&server, corpus_path("storm"), "storm-tenant");
  source.start();
  server.wait_all_finished();
  source.stop();
  EXPECT_TRUE(source.done());

  const Session* session = server.find_session(source.session_id());
  ASSERT_NE(session, nullptr);
  EXPECT_EQ(session->state(), SessionState::kFinished);
  EXPECT_TRUE(session->digest_matched());
  const std::vector<std::string> lines = sink.lines();
  ASSERT_FALSE(lines.empty());
  const std::string expect_tail = ",\"diagnosis\":" + batch.diagnosis_json + "}";
  EXPECT_EQ(lines.back().substr(lines.back().size() - expect_tail.size()), expect_tail);
  server.shutdown();
}

TEST(SessionParity, InputClosedWithoutFooterIsAnErrorFinal) {
  CaptureSink sink;
  ServerConfig cfg;
  Server server(cfg, &sink);
  const std::uint64_t sid = server.open_session("interrupted");

  replay::TraceReader reader(corpus_path("contention"));
  replay::TraceRecord rec;
  std::uint64_t offset = reader.bytes_read();
  for (int i = 0; i < 10 && reader.next(rec) == replay::TraceStatus::kOk; ++i) {
    ASSERT_TRUE(server.offer(sid, rec, offset));
    offset = reader.bytes_read();
  }
  server.close_session(
      sid,
      replay::TraceError{replay::TraceStatus::kIoError, offset, "transport lost"},
      offset);
  server.wait_all_finished();

  const Session* session = server.find_session(sid);
  ASSERT_NE(session, nullptr);
  EXPECT_EQ(session->state(), SessionState::kError);
  EXPECT_FALSE(session->digest_matched());
  EXPECT_NE(session->final_error().find("transport lost"), std::string::npos);
  const std::vector<std::string> lines = sink.lines();
  ASSERT_FALSE(lines.empty());
  EXPECT_NE(lines.back().find("\"state\":\"error\""), std::string::npos);
  EXPECT_NE(lines.back().find("transport lost"), std::string::npos);
  server.shutdown();
}

TEST(SessionParity, DropPolicyAccountsDropsInFinalVerdict) {
  CaptureSink sink;
  ServerConfig cfg;
  cfg.shards = 1;
  cfg.session.queue_capacity = 1;
  cfg.session.policy = OverflowPolicy::kDropNewest;
  cfg.session.emit_step_verdicts = false;
  Server server(cfg, &sink);
  const std::uint64_t sid = server.open_session("lossy");
  Session* session = server.find_session(sid);
  ASSERT_NE(session, nullptr);

  replay::TraceReader reader(corpus_path("incast"));
  replay::TraceRecord rec;
  std::uint64_t offset = reader.bytes_read();
  std::uint64_t accepted = 0;
  std::uint64_t rejected = 0;
  while (reader.next(rec) == replay::TraceStatus::kOk) {
    if (server.offer(sid, rec, offset)) {
      ++accepted;
    } else {
      ++rejected;
    }
    offset = reader.bytes_read();
  }
  server.close_session(sid, replay::TraceError{}, reader.bytes_read());
  server.wait_all_finished();

  const common::QueueStats q = session->queue_stats();
  EXPECT_EQ(q.pushed, accepted);
  EXPECT_EQ(q.dropped, rejected);
  EXPECT_EQ(session->frames_ingested(), accepted);
  // With capacity 1 and a single-threaded box some records may well drop; if
  // the envelope or footer was among them the session lands in kError — both
  // outcomes are valid, the invariant is exact drop accounting and a final
  // verdict either way.
  EXPECT_NE(session->state(), SessionState::kActive);
  const std::vector<std::string> lines = sink.lines();
  ASSERT_FALSE(lines.empty());
  EXPECT_NE(lines.back().find("\"type\":\"final\""), std::string::npos);
  EXPECT_NE(lines.back().find("\"dropped\":" + std::to_string(rejected)),
            std::string::npos);
  server.shutdown();
}

}  // namespace
}  // namespace vedr::serve
