// Golden-trace corpus: one recorded case per scenario, checked into
// tests/replay/corpus/ alongside the live run's diagnosis JSON. Replaying a
// stored trace must reproduce the stored diagnosis byte-for-byte — this
// pins the analyzer's behavior across refactors (an intended behavior change
// shows up as a corpus diff, regenerated with VEDR_UPDATE_CORPUS=1).
//
//   VEDR_UPDATE_CORPUS=1 ./replay_tests --gtest_filter='Corpus*'
//
// re-records every trace and expectation in the source tree.
#include <gtest/gtest.h>

#include <fstream>
#include <string>

#include "common/env.h"
#include "core/json_export.h"
#include "eval/experiment.h"
#include "net/routing.h"
#include "replay/collector.h"
#include "replay/trace_reader.h"

#ifndef VEDR_REPLAY_CORPUS_DIR
#error "VEDR_REPLAY_CORPUS_DIR must be defined by the build"
#endif

namespace vedr {
namespace {

// Must stay fixed: changing either invalidates every stored trace.
constexpr double kCorpusScale = 1.0 / 256.0;
constexpr int kCorpusCase = 0;

struct CorpusEntry {
  const char* name;
  eval::ScenarioType type;
};

const CorpusEntry kCorpus[] = {
    {"contention", eval::ScenarioType::kFlowContention},
    {"incast", eval::ScenarioType::kIncast},
    {"storm", eval::ScenarioType::kPfcStorm},
    {"backpressure", eval::ScenarioType::kPfcBackpressure},
};

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
}

class CorpusTest : public ::testing::TestWithParam<CorpusEntry> {};

TEST_P(CorpusTest, ReplayedDiagnosisMatchesStoredExpectation) {
  const CorpusEntry& entry = GetParam();
  const std::string dir = VEDR_REPLAY_CORPUS_DIR;
  const std::string trace_path = dir + "/" + entry.name + ".vtrc";
  const std::string json_path = dir + "/" + entry.name + ".expected.json";

  if (common::env_str("VEDR_UPDATE_CORPUS")) {
    eval::RunConfig cfg;
    eval::ScenarioParams params;
    params.scale = kCorpusScale;
    const net::Topology topo = net::make_fat_tree(4, cfg.netcfg);
    const auto routing = net::RoutingTable::shortest_paths(topo);
    const auto spec = eval::make_scenario(entry.type, kCorpusCase, topo, routing, params);
    std::string error;
    const eval::CaseResult live =
        eval::record_case(spec, eval::SystemKind::kVedrfolnir, cfg, trace_path, &error);
    ASSERT_TRUE(error.empty()) << error;
    std::ofstream out(json_path, std::ios::binary | std::ios::trunc);
    out << core::json::diagnosis_to_json(live.diagnosis);
    ASSERT_TRUE(out.good());
    GTEST_SKIP() << "corpus regenerated: " << trace_path;
  }

  replay::TraceReader reader(trace_path);
  replay::StreamingCollector collector;
  const replay::ReplayResult replayed = collector.replay(reader);
  ASSERT_TRUE(replayed.ok) << trace_path << ": " << replayed.error.str()
                           << " (regenerate with VEDR_UPDATE_CORPUS=1)";

  const std::string expected = read_file(json_path);
  ASSERT_FALSE(expected.empty()) << "missing expectation " << json_path;
  // Byte-identical: the replayed diagnosis must equal the diagnosis the
  // recording run produced, as stored at recording time.
  EXPECT_EQ(replayed.diagnosis_json, expected) << entry.name;
  EXPECT_TRUE(replayed.digest_matches) << entry.name;
  EXPECT_EQ(replayed.diagnosis_digest, replayed.footer.diagnosis_digest);
}

// Sketch-lane agreement over the same golden corpus: replaying each trace
// through the bounded sketch backend must (a) still complete cleanly, (b)
// carry the sketch-lane marker, and (c) rank the same top culprit as the
// exact lane whenever the exact lane implicates anyone. The lanes need not
// agree byte-for-byte — the sketch trades per-flow exactness for memory —
// but the headline verdict must survive the compression.
TEST_P(CorpusTest, SketchLaneAgreesOnTopCulprit) {
  const CorpusEntry& entry = GetParam();
  if (common::env_str("VEDR_UPDATE_CORPUS")) GTEST_SKIP() << "regeneration pass";
  const std::string trace_path =
      std::string(VEDR_REPLAY_CORPUS_DIR) + "/" + entry.name + ".vtrc";

  replay::TraceReader exact_reader(trace_path);
  replay::StreamingCollector exact_collector;
  const replay::ReplayResult exact = exact_collector.replay(exact_reader);
  ASSERT_TRUE(exact.ok) << exact.error.str();
  ASSERT_FALSE(exact.diagnosis.sketch_lane);

  replay::TraceReader sketch_reader(trace_path);
  replay::StreamingCollector sketch_collector;
  net::TelemetryParams params;
  params.backend = net::TelemetryBackend::kSketch;
  sketch_collector.set_telemetry(params);
  const replay::ReplayResult sketch = sketch_collector.replay(sketch_reader);
  ASSERT_TRUE(sketch.ok) << sketch.error.str();
  EXPECT_TRUE(sketch.diagnosis.sketch_lane);
  // The footer digest hashes the exact-lane diagnosis; matching it from the
  // sketch lane would mean the compressor changed nothing.
  EXPECT_FALSE(sketch.digest_matches);

  auto top_culprit = [](const core::Diagnosis& d) {
    net::FlowKey best{};
    double best_score = -1.0;
    for (const auto& [flow, score] : d.contributions) {
      if (score > best_score || (score == best_score && flow < best)) {
        best = flow;
        best_score = score;
      }
    }
    return std::make_pair(best, best_score);
  };
  const auto [exact_top, exact_score] = top_culprit(exact.diagnosis);
  if (exact_score >= 0) {
    const auto [sketch_top, sketch_score] = top_culprit(sketch.diagnosis);
    ASSERT_GE(sketch_score, 0.0) << entry.name << ": sketch lane implicated nobody";
    EXPECT_EQ(sketch_top, exact_top)
        << entry.name << ": sketch lane blamed " << sketch_top.str() << " but exact lane "
        << exact_top.str();
  }
}

INSTANTIATE_TEST_SUITE_P(AllScenarios, CorpusTest, ::testing::ValuesIn(kCorpus),
                         [](const ::testing::TestParamInfo<CorpusEntry>& info) {
                           return std::string(info.param.name);
                         });

}  // namespace
}  // namespace vedr
