// Round-trip coverage for every .vtrc record type: encode a fully-populated
// instance, decode it, re-encode the decoded value, and require byte
// identity. Byte-level comparison proves field-by-field equality without
// needing operator== on every nested struct, and simultaneously proves the
// encoder is deterministic.
#include <gtest/gtest.h>

#include <string>

#include "replay/trace_format.h"
#include "replay/wire.h"

namespace vedr::replay {
namespace {

template <typename T>
std::string encoded(const T& v) {
  ByteWriter w;
  encode(w, v);
  return w.take();
}

/// encode → decode → encode must reproduce the original bytes, and the
/// decoder must consume the payload exactly.
template <typename T>
void expect_roundtrip(const T& v) {
  const std::string bytes = encoded(v);
  ASSERT_FALSE(bytes.empty());
  ByteReader r(bytes);
  T out;
  ASSERT_TRUE(decode(r, out));
  EXPECT_EQ(encoded(out), bytes);

  // Trailing garbage must be rejected: decoders own the whole payload.
  const std::string padded = bytes + std::string(1, '\0');
  ByteReader dirty(padded);
  T out2;
  EXPECT_FALSE(decode(dirty, out2));

  // A payload truncated anywhere must fail cleanly, never crash.
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    ByteReader shortr(std::string_view(bytes).substr(0, cut));
    T out3;
    EXPECT_FALSE(decode(shortr, out3)) << "cut=" << cut;
  }
}

net::FlowKey flow(net::NodeId s, net::NodeId d) {
  net::FlowKey k;
  k.src = s;
  k.dst = d;
  k.sport = 104;
  k.dport = 204;
  return k;
}

telemetry::SwitchReport full_switch_report() {
  telemetry::SwitchReport rep;
  rep.switch_id = 17;
  rep.poll_id = 42;
  rep.time = 123456789;

  telemetry::PortReport port;
  port.port = {17, 3};
  port.poll_time = 123456000;
  port.qdepth_bytes = 65536;
  port.qdepth_pkts = 16;
  port.currently_paused = true;
  port.total_pause_time = 777;
  port.flows.push_back({flow(1, 5), 10, 40960, 100, 200});
  port.flows.push_back({flow(2, 5), 3, 12288, 150, 250});
  port.waits.push_back({flow(1, 5), flow(2, 5), 9});
  port.meters.push_back({2, 1 << 20});
  port.pauses.push_back({1000, 2000});
  port.pauses.push_back({3000, sim::kNever});
  rep.ports.push_back(port);
  telemetry::PortReport empty_port;  // empty port snapshot
  empty_port.port = {17, 0};
  rep.ports.push_back(empty_port);

  telemetry::PauseCauseReport cause;
  cause.ingress_port = {17, 1};
  cause.time = 5555;
  cause.injected = true;
  cause.contributions = {{0, 4096}, {3, 8192}};
  rep.causes.push_back(cause);

  rep.drops.push_back({flow(9, 4), {17, 2}, 7, 999});
  return rep;
}

TEST(TraceRoundtrip, Envelope) {
  TraceEnvelope env;
  env.system = RecordedSystem::kHawkeyeMinR;
  env.scenario = RecordedScenario::kPfcStorm;
  env.case_id = 12;
  env.seed = 0xDEADBEEFCAFEF00DULL;
  env.fat_tree_k = 4;
  env.plan_kind = 0;
  env.horizon = 987654321;
  env.participants = {2, 11, 9, 7};
  env.cc_step_bytes = 5898240;
  env.netcfg.cc_algorithm = net::CcAlgorithm::kSwift;
  env.netcfg.link_gbps = 25.5;
  env.netcfg.link_delay = 1234;
  env.netcfg.mtu_bytes = 1500;
  env.netcfg.pfc_xoff_bytes = 111111;
  env.netcfg.ecn_pmax = 0.125;
  env.netcfg.initial_ttl = 32;
  env.netcfg.pfc_chase_hops = 5;
  env.bg_flows.push_back({flow(10, 5), 1 << 22, 17});
  env.bg_flows.push_back({flow(14, 5), 1 << 20, 0});
  env.storms.push_back({{20, 1}, 100, 5000});
  env.expected_root = {20, 1};
  expect_roundtrip(env);
}

TEST(TraceRoundtrip, EnvelopeRejectsOutOfRangeEnums) {
  TraceEnvelope env;
  std::string bytes = encoded(env);
  // system is the first byte of the payload.
  bytes[0] = static_cast<char>(99);
  ByteReader r(bytes);
  TraceEnvelope out;
  EXPECT_FALSE(decode(r, out));
}

TEST(TraceRoundtrip, StepRecord) {
  collective::StepRecord rec;
  rec.key = flow(2, 11);
  rec.flow_index = 3;
  rec.step = 5;
  rec.bytes = 5898240;
  rec.src = 2;
  rec.dst = 11;
  rec.wait_src = 7;
  rec.dep_flow = 2;
  rec.dep_step = 4;
  rec.dep_ready_time = 1111;
  rec.prev_done_time = 2222;
  rec.start_time = 3333;
  rec.end_time = 4444;
  rec.expected_duration = 555;
  expect_roundtrip(rec);
}

TEST(TraceRoundtrip, PollRegistration) {
  PollRegistration reg;
  reg.poll_id = 0x123456789ABCULL;
  reg.flow = 6;
  reg.step = 2;
  expect_roundtrip(reg);
}

TEST(TraceRoundtrip, SwitchReport) { expect_roundtrip(full_switch_report()); }

TEST(TraceRoundtrip, PollTrigger) {
  PollTriggerRecord t;
  t.time = 424242;
  t.host = 3;
  t.flow = flow(3, 12);
  t.poll_id = 77;
  t.step = 1;
  expect_roundtrip(t);
}

TEST(TraceRoundtrip, Notification) {
  NotificationRecord n;
  n.time = 31337;
  n.from = 2;
  n.to = 9;
  n.step = 4;
  n.budget = 3;
  expect_roundtrip(n);
}

TEST(TraceRoundtrip, PauseCause) {
  PauseCauseRecord c;
  c.switch_id = 21;
  c.cause.ingress_port = {21, 2};
  c.cause.time = 8888;
  c.cause.injected = false;
  c.cause.contributions = {{1, 1024}};
  expect_roundtrip(c);
}

TEST(TraceRoundtrip, TtlDrop) {
  TtlDropRecord d;
  d.switch_id = 30;
  d.drop.flow = flow(6, 6);
  d.drop.port = {30, 3};
  d.drop.count = 12;
  d.drop.last_drop = 654321;
  expect_roundtrip(d);
}

TEST(TraceRoundtrip, Footer) {
  TraceFooter f;
  f.diagnosis_digest = 0x21E800075FE2267AULL;
  f.diagnosis_json_bytes = 4096;
  f.outcome = RecordedOutcome::kTruePositive;
  f.cc_completed = true;
  f.cc_time = 2138000;
  for (std::size_t i = 0; i < kNumRecordSlots; ++i)
    f.record_counts[i] = 100 + i;
  expect_roundtrip(f);
}

TEST(TraceRoundtrip, FileHeaderIsSelfChecking) {
  const std::string hdr = encode_file_header();
  ASSERT_EQ(hdr.size(), kFileHeaderBytes);
  EXPECT_EQ(hdr.substr(0, 4), std::string(kMagic, 4));
  // Stored CRC covers the first 8 bytes.
  const std::uint32_t stored = static_cast<std::uint8_t>(hdr[8]) |
                               (static_cast<std::uint32_t>(static_cast<std::uint8_t>(hdr[9])) << 8) |
                               (static_cast<std::uint32_t>(static_cast<std::uint8_t>(hdr[10])) << 16) |
                               (static_cast<std::uint32_t>(static_cast<std::uint8_t>(hdr[11])) << 24);
  EXPECT_EQ(stored, crc32(std::string_view(hdr).substr(0, 8)));
}

TEST(TraceRoundtrip, Crc32KnownVector) {
  // The classic check value for CRC-32/IEEE.
  EXPECT_EQ(crc32("123456789"), 0xCBF43926U);
  // Streaming across split buffers must match the one-shot result.
  std::uint32_t st = crc32_update(kCrcInit, "1234");
  st = crc32_update(st, "56789");
  EXPECT_EQ(crc32_finish(st), 0xCBF43926U);
}

}  // namespace
}  // namespace vedr::replay
