// A corrupt, truncated, or wrong-version .vtrc must produce a typed
// TraceStatus — never a crash, hang, or out-of-bounds read. These tests
// synthesize a small valid trace, then truncate it at every frame boundary
// (plus mid-prefix and mid-payload cuts) and bit-flip bytes at the
// boundaries and payload midpoints; they run under the ASan/UBSan build in
// CI, so any UB in the decode path is fatal.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "replay/trace_format.h"
#include "replay/trace_reader.h"
#include "replay/trace_writer.h"

namespace vedr::replay {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
}

void write_file(const std::string& path, const std::string& body) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << body;
}

/// Reads the whole stream; returns the terminal status (kEof on success).
TraceStatus pump(const std::string& path) {
  TraceReader reader(path);
  if (!reader.ok()) return reader.error().status;
  TraceRecord rec;
  TraceStatus st = TraceStatus::kOk;
  while ((st = reader.next(rec)) == TraceStatus::kOk) {
  }
  return st;
}

/// A small but representative trace: envelope, one of every streamed record
/// type, footer.
std::string make_valid_trace(const std::string& path) {
  TraceWriter writer(path);
  EXPECT_TRUE(writer.ok());

  TraceEnvelope env;
  env.participants = {0, 1};
  env.cc_step_bytes = 1024;
  env.horizon = 1000000;
  writer.write_envelope(env);

  collective::StepRecord step;
  step.key = {0, 1, 10, 20};
  step.flow_index = 0;
  step.step = 0;
  step.bytes = 1024;
  writer.on_step_record(step);

  writer.on_poll_registered(1, 0, 0);

  telemetry::SwitchReport rep;
  rep.switch_id = 16;
  rep.poll_id = 1;
  rep.time = 500;
  telemetry::PortReport port;
  port.port = {16, 0};
  port.flows.push_back({{0, 1, 10, 20}, 2, 1024, 10, 400});
  rep.ports.push_back(port);
  writer.on_switch_report_in(rep);

  writer.on_poll_trigger(450, 0, {0, 1, 10, 20}, 1, 0);
  writer.on_notification_sent(460, 0, 1, 0, 2);

  telemetry::PauseCauseReport cause;
  cause.ingress_port = {16, 1};
  cause.time = 470;
  cause.contributions = {{0, 2048}};
  writer.on_pause_cause(16, cause);

  telemetry::DropEntry drop;
  drop.flow = {0, 1, 10, 20};
  drop.port = {16, 2};
  drop.count = 1;
  drop.last_drop = 480;
  writer.on_ttl_drop(16, drop);

  TraceFooter footer;
  footer.diagnosis_digest = 1;
  writer.write_footer(footer);
  EXPECT_TRUE(writer.close());
  return read_file(path);
}

/// Byte offsets where each frame starts, plus the end-of-file offset.
std::vector<std::size_t> frame_boundaries(const std::string& bytes) {
  std::vector<std::size_t> at;
  std::size_t pos = kFileHeaderBytes;
  while (pos < bytes.size()) {
    at.push_back(pos);
    const std::uint32_t len = static_cast<std::uint8_t>(bytes[pos + 1]) |
                              (static_cast<std::uint32_t>(static_cast<std::uint8_t>(bytes[pos + 2])) << 8) |
                              (static_cast<std::uint32_t>(static_cast<std::uint8_t>(bytes[pos + 3])) << 16) |
                              (static_cast<std::uint32_t>(static_cast<std::uint8_t>(bytes[pos + 4])) << 24);
    pos += kFramePrefixBytes + len + kFrameCrcBytes;
  }
  at.push_back(bytes.size());
  return at;
}

class CorruptionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir();
    // ctest runs each test case as its own process, in parallel, all sharing
    // TempDir(); a per-process suffix keeps concurrent cases from tearing
    // each other's files.
    const std::string tag = std::to_string(::getpid());
    valid_path_ = dir_ + "/valid." + tag + ".vtrc";
    bytes_ = make_valid_trace(valid_path_);
    ASSERT_GT(bytes_.size(), kFileHeaderBytes);
    boundaries_ = frame_boundaries(bytes_);
    // envelope + 7 streamed records + footer = 9 frames.
    ASSERT_EQ(boundaries_.size(), 10u);
    ASSERT_EQ(boundaries_.back(), bytes_.size());
    mutant_path_ = dir_ + "/mutant." + tag + ".vtrc";
  }

  TraceStatus pump_mutant(const std::string& body) {
    write_file(mutant_path_, body);
    return pump(mutant_path_);
  }

  std::string dir_, valid_path_, mutant_path_;
  std::string bytes_;
  std::vector<std::size_t> boundaries_;
};

TEST_F(CorruptionTest, ValidTraceReadsCleanly) {
  EXPECT_EQ(pump(valid_path_), TraceStatus::kEof);
}

TEST_F(CorruptionTest, TruncationAtEveryFrameBoundary) {
  // Cutting at any boundary except end-of-file loses the footer (and more),
  // which the reader must report as truncation — a frame-granular cut leaves
  // every remaining byte valid, so only the footer's absence betrays it.
  for (std::size_t i = 0; i + 1 < boundaries_.size(); ++i) {
    const TraceStatus st = pump_mutant(bytes_.substr(0, boundaries_[i]));
    EXPECT_EQ(st, TraceStatus::kTruncated) << "cut at frame " << i;
  }
}

TEST_F(CorruptionTest, TruncationMidPrefixAndMidPayload) {
  for (std::size_t i = 0; i + 1 < boundaries_.size(); ++i) {
    const std::size_t frame = boundaries_[i];
    const std::size_t frame_len = boundaries_[i + 1] - frame;
    // Mid-prefix: type byte present, length field cut short.
    EXPECT_EQ(pump_mutant(bytes_.substr(0, frame + 2)), TraceStatus::kTruncated)
        << "mid-prefix cut in frame " << i;
    // Mid-payload / mid-CRC.
    EXPECT_EQ(pump_mutant(bytes_.substr(0, frame + frame_len / 2 + 1)), TraceStatus::kTruncated)
        << "mid-payload cut in frame " << i;
  }
}

TEST_F(CorruptionTest, TruncatedHeader) {
  for (std::size_t cut = 0; cut < kFileHeaderBytes; ++cut) {
    const TraceStatus st = pump_mutant(bytes_.substr(0, cut));
    EXPECT_TRUE(st == TraceStatus::kBadHeader || st == TraceStatus::kBadMagic) << "cut=" << cut;
  }
}

TEST_F(CorruptionTest, BitFlipAtEveryFrameBoundary) {
  // Flipping a bit in a frame prefix corrupts either the type, the length,
  // or both; any typed error is acceptable, silent success is not.
  for (std::size_t i = 0; i + 1 < boundaries_.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string mutant = bytes_;
      mutant[boundaries_[i]] = static_cast<char>(mutant[boundaries_[i]] ^ (1 << bit));
      const TraceStatus st = pump_mutant(mutant);
      EXPECT_TRUE(st == TraceStatus::kCrcMismatch || st == TraceStatus::kBadRecord ||
                  st == TraceStatus::kTruncated)
          << "frame " << i << " bit " << bit << " -> " << to_string(st);
    }
  }
}

TEST_F(CorruptionTest, BitFlipInPayloadIsCaughtByCrc) {
  // A flip strictly inside a payload leaves the prefix intact, so the frame
  // is read in full and the CRC must catch it.
  for (std::size_t i = 0; i + 1 < boundaries_.size(); ++i) {
    const std::size_t frame = boundaries_[i];
    const std::size_t frame_len = boundaries_[i + 1] - frame;
    if (frame_len <= kFramePrefixBytes + kFrameCrcBytes) continue;  // empty payload
    std::string mutant = bytes_;
    const std::size_t at = frame + kFramePrefixBytes + (frame_len - kFramePrefixBytes - kFrameCrcBytes) / 2;
    mutant[at] = static_cast<char>(mutant[at] ^ 0x40);
    EXPECT_EQ(pump_mutant(mutant), TraceStatus::kCrcMismatch) << "frame " << i;
  }
}

TEST_F(CorruptionTest, BadMagic) {
  std::string mutant = bytes_;
  mutant[0] = 'X';
  EXPECT_EQ(pump_mutant(mutant), TraceStatus::kBadMagic);
}

TEST_F(CorruptionTest, HeaderCrcMismatch) {
  std::string mutant = bytes_;
  mutant[8] = static_cast<char>(mutant[8] ^ 0xFF);  // stored header CRC
  EXPECT_EQ(pump_mutant(mutant), TraceStatus::kBadHeader);
  std::string mutant2 = bytes_;
  mutant2[6] = static_cast<char>(mutant2[6] ^ 0x01);  // flags field
  EXPECT_EQ(pump_mutant(mutant2), TraceStatus::kBadHeader);
}

TEST_F(CorruptionTest, ReservedFlagsRejected) {
  // A header with nonzero flags and a *valid* CRC — i.e. written by a
  // future producer, not corrupted in transit — must still be rejected.
  ByteWriter w;
  w.bytes(std::string_view(kMagic, sizeof kMagic));
  w.u16(kTraceVersion);
  w.u16(1);  // reserved flags
  std::string header = w.take();
  ByteWriter crc_w;
  crc_w.u32(crc32(header));
  header += crc_w.take();
  EXPECT_EQ(pump_mutant(header + bytes_.substr(kFileHeaderBytes)), TraceStatus::kBadHeader);
}

TEST_F(CorruptionTest, WrongVersionRejected) {
  // A well-formed header from a future version: readers accept exactly one
  // version (DESIGN.md versioning rules).
  std::string mutant = encode_file_header(kTraceVersion + 1) + bytes_.substr(kFileHeaderBytes);
  EXPECT_EQ(pump_mutant(mutant), TraceStatus::kBadVersion);
}

TEST_F(CorruptionTest, FrameAfterFooterRejected) {
  // Duplicate the footer frame at the end: structurally invalid.
  const std::size_t footer_at = boundaries_[boundaries_.size() - 2];
  std::string mutant = bytes_ + bytes_.substr(footer_at);
  EXPECT_EQ(pump_mutant(mutant), TraceStatus::kBadRecord);
}

TEST_F(CorruptionTest, MissingEnvelopeRejected) {
  // Drop the envelope frame: the first record is then a step record, which
  // may not appear before the envelope.
  std::string mutant = bytes_.substr(0, kFileHeaderBytes) + bytes_.substr(boundaries_[1]);
  EXPECT_EQ(pump_mutant(mutant), TraceStatus::kBadRecord);
}

TEST_F(CorruptionTest, ErrorsLatch) {
  std::string mutant = bytes_;
  const std::size_t at = boundaries_[2] + kFramePrefixBytes;
  mutant[at] = static_cast<char>(mutant[at] ^ 0x01);
  write_file(mutant_path_, mutant);
  TraceReader reader(mutant_path_);
  TraceRecord rec;
  TraceStatus st = TraceStatus::kOk;
  while ((st = reader.next(rec)) == TraceStatus::kOk) {
  }
  EXPECT_EQ(st, TraceStatus::kCrcMismatch);
  // Further calls return the same latched error.
  EXPECT_EQ(reader.next(rec), TraceStatus::kCrcMismatch);
  EXPECT_EQ(reader.error().status, TraceStatus::kCrcMismatch);
  EXPECT_FALSE(reader.error().str().empty());
}

TEST_F(CorruptionTest, NonexistentFile) {
  EXPECT_EQ(pump(dir_ + "/does-not-exist.vtrc"), TraceStatus::kIoError);
}

TEST_F(CorruptionTest, EmptyFile) {
  EXPECT_TRUE(pump_mutant("") == TraceStatus::kBadHeader || pump_mutant("") == TraceStatus::kBadMagic);
}

}  // namespace
}  // namespace vedr::replay
