// End-to-end guarantees of the trace subsystem:
//  1. Recording is observation-only — a recorded run produces the same
//     determinism digest as an unrecorded one.
//  2. The offline replay path reproduces the live diagnosis bit-for-bit,
//     for every system kind (Vedrfolnir and the baselines route all
//     diagnosis input through the Analyzer, which is what the trace mirrors).
#include <gtest/gtest.h>

#include <string>

#include "core/json_export.h"
#include "eval/experiment.h"
#include "net/routing.h"
#include "replay/collector.h"
#include "replay/trace_reader.h"
#include "replay/trace_writer.h"

namespace vedr {
namespace {

// Tiny workload: full fidelity, CI-friendly runtime.
constexpr double kScale = 1.0 / 256.0;

eval::ScenarioSpec make_spec(eval::ScenarioType type, int case_id, const eval::RunConfig& cfg) {
  eval::ScenarioParams params;
  params.scale = kScale;
  const net::Topology topo = net::make_fat_tree(4, cfg.netcfg);
  const auto routing = net::RoutingTable::shortest_paths(topo);
  return eval::make_scenario(type, case_id, topo, routing, params);
}

TEST(ReplayIdentity, RecordingDoesNotPerturbTheRun) {
  eval::RunConfig cfg;
  const auto spec = make_spec(eval::ScenarioType::kIncast, 0, cfg);

  const std::uint64_t bare = eval::run_case_digest(spec, eval::SystemKind::kVedrfolnir, cfg);

  const std::string path = ::testing::TempDir() + "/perturb.vtrc";
  replay::TraceWriter writer(path);
  eval::RunConfig recording = cfg;
  recording.trace_writer = &writer;
  const std::uint64_t recorded =
      eval::run_case_digest(spec, eval::SystemKind::kVedrfolnir, recording);
  writer.close();

  EXPECT_EQ(bare, recorded) << "attaching a TraceWriter changed the simulation";
  EXPECT_TRUE(writer.ok());
  EXPECT_GT(writer.frames_written(), 0u);
}

TEST(ReplayIdentity, ReplayReproducesLiveDiagnosisForAllSystems) {
  const eval::SystemKind kinds[] = {
      eval::SystemKind::kVedrfolnir,
      eval::SystemKind::kHawkeyeMaxR,
      eval::SystemKind::kHawkeyeMinR,
      eval::SystemKind::kFullPolling,
  };
  eval::RunConfig cfg;
  const auto spec = make_spec(eval::ScenarioType::kFlowContention, 1, cfg);

  for (const auto kind : kinds) {
    const std::string path =
        ::testing::TempDir() + "/identity_" + std::string(eval::to_string(kind)) + ".vtrc";
    std::string error;
    const eval::CaseResult live = eval::record_case(spec, kind, cfg, path, &error);
    ASSERT_TRUE(error.empty()) << error;
    const std::string live_json = core::json::diagnosis_to_json(live.diagnosis);

    replay::TraceReader reader(path);
    replay::StreamingCollector collector;
    const replay::ReplayResult replayed = collector.replay(reader);

    ASSERT_TRUE(replayed.ok) << eval::to_string(kind) << ": " << replayed.error.str();
    EXPECT_TRUE(replayed.have_footer);
    EXPECT_EQ(replayed.diagnosis_json, live_json) << eval::to_string(kind);
    EXPECT_EQ(replayed.diagnosis_digest, replay::diagnosis_json_digest(live_json));
    EXPECT_TRUE(replayed.digest_matches) << eval::to_string(kind);
  }
}

TEST(ReplayIdentity, RecordCaseMatchesPlainRunCase) {
  eval::RunConfig cfg;
  const auto spec = make_spec(eval::ScenarioType::kPfcStorm, 0, cfg);

  const eval::CaseResult plain = eval::run_case(spec, eval::SystemKind::kVedrfolnir, cfg);
  const std::string path = ::testing::TempDir() + "/record_eq.vtrc";
  std::string error;
  const eval::CaseResult recorded =
      eval::record_case(spec, eval::SystemKind::kVedrfolnir, cfg, path, &error);
  ASSERT_TRUE(error.empty()) << error;

  EXPECT_EQ(core::json::diagnosis_to_json(plain.diagnosis),
            core::json::diagnosis_to_json(recorded.diagnosis));
  EXPECT_EQ(plain.cc_time, recorded.cc_time);
  EXPECT_EQ(plain.cc_completed, recorded.cc_completed);
  EXPECT_EQ(plain.telemetry_bytes, recorded.telemetry_bytes);
  EXPECT_EQ(plain.bandwidth_bytes, recorded.bandwidth_bytes);
  EXPECT_EQ(plain.sim_events, recorded.sim_events);
}

TEST(ReplayIdentity, FooterCarriesTheLiveOutcome) {
  eval::RunConfig cfg;
  const auto spec = make_spec(eval::ScenarioType::kPfcBackpressure, 0, cfg);
  const std::string path = ::testing::TempDir() + "/footer.vtrc";
  std::string error;
  const eval::CaseResult live =
      eval::record_case(spec, eval::SystemKind::kVedrfolnir, cfg, path, &error);
  ASSERT_TRUE(error.empty()) << error;

  replay::TraceReader reader(path);
  replay::StreamingCollector collector;
  const replay::ReplayResult replayed = collector.replay(reader);
  ASSERT_TRUE(replayed.ok) << replayed.error.str();

  EXPECT_EQ(replayed.footer.cc_completed, live.cc_completed);
  EXPECT_EQ(replayed.footer.cc_time, live.cc_time);
  EXPECT_EQ(replayed.footer.diagnosis_json_bytes,
            core::json::diagnosis_to_json(live.diagnosis).size());
  const auto expect_outcome = live.outcome.tp   ? replay::RecordedOutcome::kTruePositive
                              : live.outcome.fp ? replay::RecordedOutcome::kFalsePositive
                                                : replay::RecordedOutcome::kFalseNegative;
  EXPECT_EQ(replayed.footer.outcome, expect_outcome);
  // Envelope ground truth survives the round trip.
  EXPECT_EQ(replayed.envelope.seed, spec.seed);
  EXPECT_EQ(replayed.envelope.case_id, spec.case_id);
  EXPECT_EQ(replayed.envelope.participants.size(), spec.participants.size());
  EXPECT_EQ(replayed.envelope.bg_flows.size(), spec.bg_flows.size());
  EXPECT_EQ(replayed.envelope.storms.size(), spec.storms.size());
}

}  // namespace
}  // namespace vedr
